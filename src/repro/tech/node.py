"""Technology node description.

The paper's scratch-pad memory is designed in a 90 nm *logic* process
(1.2 V, CMOS gate capacitance cell).  The final architecture is then
re-estimated in a 90 nm *DRAM* process, which differs in three ways the
paper calls out explicitly:

* the storage capacitor is a deep trench (30 fF instead of 11 fF),
* the cell access transistor gate may be overdriven (1.7 V word line),
  which logic reliability rules forbid,
* the cell area is much smaller (0.3 um^2 instead of a gate-cap cell).

Both processes are expressed here as :class:`TechnologyNode` instances
sharing the same parameter schema, so the rest of the library can model
either by swapping one object.
"""

from __future__ import annotations

import dataclasses
import enum
import math
from typing import Dict, Tuple

from repro.errors import ConfigurationError
from repro.units import fF, nA, nm, pA, uA, um, V

BOLTZMANN_Q = 8.617333262e-5  # noqa: L101 - k/q in V/K, physical constant


class Polarity(enum.Enum):
    """MOSFET polarity."""

    NMOS = "nmos"
    PMOS = "pmos"


class VtFlavor(enum.Enum):
    """Threshold-voltage flavour offered by the process.

    The paper's local block (Fig. 4) mixes HVT devices (read buffer input,
    cell access transistor: leakage-critical) with LVT devices
    (speed-critical read buffer output stage).
    """

    LVT = "lvt"
    SVT = "svt"
    HVT = "hvt"


@dataclasses.dataclass(frozen=True)
class TransistorParams:
    """Per-(polarity, flavour) process constants of the analytic model.

    Attributes
    ----------
    vth:
        Saturation threshold voltage at nominal ``vds`` and temperature, V.
    k_sat:
        Alpha-power-law drive factor, A per metre of width at
        ``(vgs - vth) = 1 V``.
    alpha:
        Velocity-saturation index of the alpha-power law (2.0 = long
        channel, ~1.2-1.4 at 90 nm).
    i_off:
        Subthreshold leakage at ``vgs = 0, vds = vdd``, A per metre of
        width, at the node's nominal temperature.
    subthreshold_swing:
        Subthreshold swing, V/decade.
    dibl:
        Drain-induced barrier lowering, V of vth shift per V of vds.
    body_effect:
        Linearised body-effect coefficient, V of vth shift per V of
        source-body reverse bias.
    """

    vth: float
    k_sat: float
    alpha: float
    i_off: float
    subthreshold_swing: float
    dibl: float
    body_effect: float

    def __post_init__(self) -> None:
        if self.vth <= 0:
            raise ConfigurationError(f"vth must be positive, got {self.vth}")
        if self.k_sat <= 0:
            raise ConfigurationError(f"k_sat must be positive, got {self.k_sat}")
        if not 1.0 <= self.alpha <= 2.0:
            raise ConfigurationError(
                f"alpha-power index must lie in [1, 2], got {self.alpha}"
            )
        if self.i_off < 0:
            raise ConfigurationError(f"i_off must be non-negative, got {self.i_off}")
        if self.subthreshold_swing < 0.059:
            raise ConfigurationError(
                "subthreshold swing below the 60 mV/dec room-temperature limit: "
                f"{self.subthreshold_swing}"
            )


@dataclasses.dataclass(frozen=True)
class TechnologyNode:
    """A CMOS (or DRAM) process node.

    Instances are immutable; derived processes (corners, DRAM variant)
    are created with :func:`dataclasses.replace` through the helpers in
    :mod:`repro.tech.corners` and :meth:`dram_90nm`.
    """

    name: str
    feature_size: float  # metres (drawn gate length)
    vdd: float  # nominal core supply, V
    vdd_max: float  # reliability-limited maximum gate voltage, V
    temperature: float  # K
    transistors: Dict[Tuple[Polarity, VtFlavor], TransistorParams]
    # Capacitance constants
    gate_cap_per_width: float  # F per metre of gate width (incl. overlap)
    junction_cap_per_width: float  # F per metre of drain/source width
    gate_leak_per_area: float  # A per m^2 of gate area
    junction_leak_per_width: float  # A per metre of junction width
    # Layout constants
    min_width: float  # metres, the paper's "width unit" (120 nm at 90 nm node)
    sram6t_cell_area: float  # m^2
    dram_cell_area: float  # m^2 (only meaningful for DRAM-capable nodes)
    allows_wordline_overdrive: bool

    def __post_init__(self) -> None:
        if self.vdd <= 0 or self.vdd_max < self.vdd:
            raise ConfigurationError(
                f"inconsistent supplies vdd={self.vdd} vdd_max={self.vdd_max}"
            )
        if self.temperature <= 0:
            raise ConfigurationError("temperature must be in kelvin and positive")
        if not self.transistors:
            raise ConfigurationError("a node needs at least one transistor flavour")

    # -- convenience -------------------------------------------------------

    @property
    def thermal_voltage(self) -> float:
        """kT/q at the node temperature, in volts."""
        return BOLTZMANN_Q * self.temperature

    def params(self, polarity: Polarity, flavor: VtFlavor) -> TransistorParams:
        """Look up the transistor card for ``(polarity, flavor)``."""
        try:
            return self.transistors[(polarity, flavor)]
        except KeyError as exc:
            raise ConfigurationError(
                f"{self.name} has no {polarity.value}/{flavor.value} device"
            ) from exc

    def width_units(self, units: float) -> float:
        """Convert the paper's transistor-width units to metres.

        The paper annotates Fig. 4 with widths "expressed in 120 nm
        units"; ``width_units(6)`` returns the width of a 6-unit device.
        """
        if units <= 0:
            raise ConfigurationError(f"width must be positive, got {units} units")
        return units * self.min_width

    # -- factory methods ---------------------------------------------------

    @classmethod
    def logic_90nm(cls, temperature: float = 300.0) -> "TechnologyNode":
        """The 90 nm low-power logic process of the scratch-pad design.

        Device constants are calibrated to public 90 nm LP figures:
        NMOS SVT drive ~ 540 uA/um, Ioff ~ 1 nA/um, HVT Ioff well below
        0.1 nA/um, PMOS drive ~ 45 % of NMOS.
        """
        nmos = {
            VtFlavor.LVT: TransistorParams(
                vth=0.22, k_sat=680 * uA / um, alpha=1.3, i_off=12 * nA / um,
                subthreshold_swing=0.092, dibl=0.10, body_effect=0.18,
            ),
            VtFlavor.SVT: TransistorParams(
                vth=0.32, k_sat=540 * uA / um, alpha=1.3, i_off=1 * nA / um,
                subthreshold_swing=0.090, dibl=0.09, body_effect=0.20,
            ),
            VtFlavor.HVT: TransistorParams(
                vth=0.45, k_sat=420 * uA / um, alpha=1.32, i_off=50 * pA / um,
                subthreshold_swing=0.088, dibl=0.08, body_effect=0.22,
            ),
        }
        pmos = {
            flavor: dataclasses.replace(
                params,
                k_sat=params.k_sat * 0.45,
                i_off=params.i_off * 0.6,
            )
            for flavor, params in nmos.items()
        }
        transistors = {(Polarity.NMOS, f): p for f, p in nmos.items()}
        transistors.update({(Polarity.PMOS, f): p for f, p in pmos.items()})
        return cls(
            name="90nm-logic-LP",
            feature_size=90 * nm,
            vdd=1.2 * V,
            vdd_max=1.32 * V,  # 1.2 V + 10 % reliability margin, no overdrive
            temperature=temperature,
            transistors=transistors,
            gate_cap_per_width=1.45 * fF / um,
            junction_cap_per_width=0.9 * fF / um,
            gate_leak_per_area=0.5,  # A/m^2, 90 nm LP (thick-ish) gate oxide
            junction_leak_per_width=5 * pA / um,
            min_width=120 * nm,
            sram6t_cell_area=1.0 * um * um,
            dram_cell_area=0.3 * um * um,
            allows_wordline_overdrive=False,
        )

    @classmethod
    def dram_90nm(cls, temperature: float = 300.0) -> "TechnologyNode":
        """The 90 nm DRAM process of the final estimate (paper Sec. III).

        Compared to the logic process: word-line overdrive to 1.7 V is
        allowed, the cell junction leakage is roughly an order of
        magnitude lower (dedicated low-leakage array devices), and the
        0.3 um^2 trench cell area applies.
        """
        logic = cls.logic_90nm(temperature=temperature)
        transistors = dict(logic.transistors)
        # DRAM array access device: HVT-like but with a longer channel and
        # engineered junctions -> lower i_off, slightly lower drive.
        for polarity in (Polarity.NMOS, Polarity.PMOS):
            base = transistors[(polarity, VtFlavor.HVT)]
            transistors[(polarity, VtFlavor.HVT)] = dataclasses.replace(
                base,
                i_off=base.i_off * 0.2,
                k_sat=base.k_sat * 0.9,
            )
        return dataclasses.replace(
            logic,
            name="90nm-dram",
            vdd_max=1.7 * V,  # overdriven word line
            transistors=transistors,
            junction_leak_per_width=logic.junction_leak_per_width * 0.1,
            allows_wordline_overdrive=True,
        )

    def scaled(self, feature_size: float) -> "TechnologyNode":
        """Crude constant-field scaling of this node to another feature size.

        Used only for exploratory sweeps (how would the architecture look
        at 65/45 nm); all paper results use the 90 nm cards unchanged.
        """
        if feature_size <= 0:
            raise ConfigurationError("feature size must be positive")
        ratio = feature_size / self.feature_size
        if not 0.1 <= ratio <= 10.0:
            raise ConfigurationError(
                f"refusing to scale by more than 10x (ratio {ratio:.3g})"
            )
        transistors = {
            key: dataclasses.replace(
                params,
                # Drive per width improves roughly as 1/sqrt(ratio);
                # leakage grows quickly as the channel shortens.
                k_sat=params.k_sat / math.sqrt(ratio),
                i_off=params.i_off * ratio ** -2.0 if ratio >= 1 else
                params.i_off * (1.0 / ratio) ** 2.0,
            )
            for key, params in self.transistors.items()
        }
        return dataclasses.replace(
            self,
            name=f"{self.name}-scaled-{feature_size / nm:.0f}nm",
            feature_size=feature_size,
            transistors=transistors,
            gate_cap_per_width=self.gate_cap_per_width,  # ~constant per width
            min_width=self.min_width * ratio,
            sram6t_cell_area=self.sram6t_cell_area * ratio ** 2,
            dram_cell_area=self.dram_cell_area * ratio ** 2,
        )
