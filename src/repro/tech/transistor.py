"""Analytic MOSFET model (Sakurai-Newton alpha-power law + subthreshold).

This is the device curve behind everything: the architecture-level
delay/energy estimators query it for on-current and capacitance, and the
:mod:`repro.spice` MOSFET element evaluates it inside Newton iterations.

The model is deliberately first-order — the paper's conclusions rest on
charge-sharing ratios, RC products and CV^2 energies, not on short-channel
subtleties — but it is smooth and monotonic, which the transient solver
requires.
"""

from __future__ import annotations

import dataclasses
import math

from repro.errors import ConfigurationError
from repro.tech.node import Polarity, TechnologyNode, TransistorParams, VtFlavor


@dataclasses.dataclass(frozen=True)
class Mosfet:
    """A sized MOSFET instance on a given technology node.

    Parameters
    ----------
    node:
        Technology node supplying the process constants.
    polarity:
        NMOS or PMOS.
    flavor:
        Threshold flavour (LVT/SVT/HVT).
    width:
        Gate width in metres.  Use :meth:`TechnologyNode.width_units` to
        convert from the paper's 120 nm width units.
    length_factor:
        Drawn length as a multiple of the node feature size (1.0 =
        minimum length).  Longer devices trade drive for leakage; the
        DRAM cell access transistor uses ~1.5.
    """

    node: TechnologyNode
    polarity: Polarity
    flavor: VtFlavor
    width: float
    length_factor: float = 1.0

    def __post_init__(self) -> None:
        if self.width <= 0:
            raise ConfigurationError(f"width must be positive, got {self.width}")
        if self.length_factor < 1.0:
            raise ConfigurationError(
                f"length_factor below minimum length: {self.length_factor}"
            )

    # -- derived process constants -----------------------------------------

    @property
    def params(self) -> TransistorParams:
        return self.node.params(self.polarity, self.flavor)

    @property
    def vth(self) -> float:
        """Zero-bias saturation threshold, positive for both polarities."""
        return self.params.vth

    def effective_vth(self, vds: float, vsb: float = 0.0) -> float:
        """Threshold including DIBL and (linearised) body effect."""
        p = self.params
        vth = p.vth - p.dibl * abs(vds) + p.body_effect * max(0.0, vsb)
        # DIBL can never push the device to depletion-mode in this model.
        return max(0.05, vth)

    # -- currents ------------------------------------------------------------

    def drain_current(self, vgs: float, vds: float, vsb: float = 0.0) -> float:
        """Drain current magnitude, amperes, for terminal-magnitude voltages.

        ``vgs`` and ``vds`` are magnitudes: pass positive numbers for both
        polarities (the SPICE element handles sign conventions).  The
        curve blends smoothly between subthreshold and strong inversion
        so that Newton iteration converges.
        """
        if vds < 0:
            raise ConfigurationError("drain_current expects vds magnitude >= 0")
        p = self.params
        vth = self.effective_vth(vds, vsb)
        vod = vgs - vth
        i_sub = self._subthreshold_current(vgs, vds, vth)
        if vod <= 0:
            return i_sub
        drive = p.k_sat / self.length_factor
        i_dsat = drive * self.width * vod ** p.alpha
        vdsat = max(0.05, 0.5 * vod)
        if vds >= vdsat:
            i_strong = i_dsat * (1.0 + 0.05 * (vds - vdsat))  # mild CLM
        else:
            ratio = vds / vdsat
            i_strong = i_dsat * ratio * (2.0 - ratio)
        # Near vgs ~ vth both mechanisms carry current; summing them (the
        # EKV-style interpolation) keeps the curve smooth, which the
        # Newton solver needs — a max() here creates a derivative kink
        # that can trap the iteration in a limit cycle.
        return i_strong + i_sub

    def _subthreshold_current(self, vgs: float, vds: float, vth: float) -> float:
        p = self.params
        vt_thermal = self.node.thermal_voltage
        # i_off is specified at vgs=0, vds=vdd with the DIBL-reduced vth;
        # normalise so the curve passes through that anchor point.  The
        # exponential is only valid below threshold: cap vgs at vth so the
        # branch saturates and strong inversion takes over above it.
        vth_at_ioff = max(0.05, p.vth - p.dibl * self.node.vdd)
        exponent = (min(vgs, vth) - (vth - vth_at_ioff)) / p.subthreshold_swing
        i = p.i_off * self.width / self.length_factor * 10.0 ** exponent
        if vds < 5 * vt_thermal:
            i *= 1.0 - math.exp(-vds / vt_thermal)
        return i

    def on_current(self, vgs: float | None = None) -> float:
        """Saturation drive at ``vgs`` (default: nominal vdd)."""
        vgs = self.node.vdd if vgs is None else vgs
        return self.drain_current(vgs=vgs, vds=self.node.vdd)

    def off_current(self, vds: float | None = None) -> float:
        """Subthreshold leakage at ``vgs = 0``."""
        vds = self.node.vdd if vds is None else vds
        return self.drain_current(vgs=0.0, vds=vds)

    # -- capacitances ----------------------------------------------------------

    def gate_capacitance(self) -> float:
        """Total gate capacitance, farads."""
        return self.node.gate_cap_per_width * self.width * self.length_factor

    def junction_capacitance(self) -> float:
        """Drain (or source) junction capacitance, farads."""
        return self.node.junction_cap_per_width * self.width

    def gate_leakage(self) -> float:
        """Gate tunnelling leakage at full gate bias, amperes."""
        gate_area = self.width * self.node.feature_size * self.length_factor
        return self.node.gate_leak_per_area * gate_area

    # -- small-signal-ish helpers used by the architecture model --------------

    def on_resistance(self, vgs: float | None = None) -> float:
        """Effective switching resistance ~ vdd / (2 * Ion).

        The factor 2 averages the current over the output transition, the
        standard RC-delay approximation.
        """
        i_on = self.on_current(vgs)
        if i_on <= 0:
            raise ConfigurationError("device has no drive at the given bias")
        return self.node.vdd / (2.0 * i_on)

    def scaled(self, width_ratio: float) -> "Mosfet":
        """Return a copy with the width multiplied by ``width_ratio``."""
        if width_ratio <= 0:
            raise ConfigurationError("width ratio must be positive")
        return dataclasses.replace(self, width=self.width * width_ratio)

    def with_vth_shift(self, shift: float) -> "Mosfet":
        """Return a copy whose threshold is shifted by ``shift`` volts.

        This is how Monte-Carlo mismatch enters circuit simulation: each
        sampled device instance carries its own Pelgrom VT draw.  The
        subthreshold leakage moves consistently with the shift (one
        decade per swing).
        """
        import dataclasses as _dc

        p = self.params
        vth = p.vth + shift
        if vth <= 0.05:
            raise ConfigurationError(
                f"vth shift {shift:+.3f} V leaves no threshold")
        i_off = p.i_off * 10.0 ** (-shift / p.subthreshold_swing)
        shifted_params = _dc.replace(p, vth=vth, i_off=i_off)
        shifted_node = _dc.replace(
            self.node,
            transistors={**self.node.transistors,
                         (self.polarity, self.flavor): shifted_params},
        )
        return _dc.replace(self, node=shifted_node)
