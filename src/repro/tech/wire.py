"""Interconnect RC models.

Wire loads enter the architecture model the same way the paper's layout
extraction did: as a capacitance (for CV^2 energy) and an RC product (for
delay).  Three representative 90 nm wire layers are provided; the array
model picks local/intermediate/global layers for LBL/LWL/GBL/GWL nets.
"""

from __future__ import annotations

import dataclasses
import math

from repro.errors import ConfigurationError
from repro.units import fF, mm, ohm, um


@dataclasses.dataclass(frozen=True)
class WireLayer:
    """Per-length electrical constants of a metal layer."""

    name: str
    resistance_per_length: float  # ohm / m
    capacitance_per_length: float  # F / m

    def __post_init__(self) -> None:
        if self.resistance_per_length <= 0 or self.capacitance_per_length <= 0:
            raise ConfigurationError(
                f"wire layer {self.name} needs positive R and C per length"
            )


# 90 nm back-end stack, calibrated to ITRS-class numbers.  Local (M1/M2)
# wires are thin and resistive; global (top metal) wires are thick.
LOCAL_LAYER = WireLayer(
    name="local", resistance_per_length=1.6 * ohm / um,
    capacitance_per_length=0.20 * fF / um,
)
INTERMEDIATE_LAYER = WireLayer(
    name="intermediate", resistance_per_length=0.6 * ohm / um,
    capacitance_per_length=0.23 * fF / um,
)
GLOBAL_LAYER = WireLayer(
    name="global", resistance_per_length=0.12 * ohm / um,
    capacitance_per_length=0.26 * fF / um,
)


@dataclasses.dataclass(frozen=True)
class Wire:
    """A wire segment of a given length on a given layer."""

    layer: WireLayer
    length: float  # metres

    def __post_init__(self) -> None:
        if self.length < 0:
            raise ConfigurationError(f"wire length must be >= 0, got {self.length}")

    @property
    def resistance(self) -> float:
        return self.layer.resistance_per_length * self.length

    @property
    def capacitance(self) -> float:
        return self.layer.capacitance_per_length * self.length

    def elmore_delay(self, driver_resistance: float, load_capacitance: float = 0.0) -> float:
        """50 % Elmore delay of driver + distributed wire + lumped load.

        ``0.69 * (Rdrv * (Cw + CL) + Rw * (Cw/2 + CL))``
        """
        if driver_resistance < 0 or load_capacitance < 0:
            raise ConfigurationError("driver resistance and load must be >= 0")
        r_w, c_w = self.resistance, self.capacitance
        tau = driver_resistance * (c_w + load_capacitance) + r_w * (
            0.5 * c_w + load_capacitance
        )
        return 0.69 * tau

    def energy(self, swing: float, supply: float | None = None) -> float:
        """Energy drawn from ``supply`` to swing the wire by ``swing`` volts.

        For a full-swing rail-to-rail transition pass ``swing == supply``
        (C * V^2 drawn, half dissipated per edge as usual).  For low-swing
        signalling (the paper's GBL: 0.4 V -> 0.3 V) the supply charge is
        ``C * swing`` taken from the low-swing supply rail.
        """
        if swing < 0:
            raise ConfigurationError("swing must be >= 0")
        supply = swing if supply is None else supply
        return self.capacitance * swing * supply


def optimal_repeater_count(wire: Wire, driver_resistance: float,
                           driver_capacitance: float) -> int:
    """Number of repeaters minimising delay on a long resistive wire.

    Classical result: ``k = sqrt(0.4 * Rw * Cw / (0.7 * Rd * Cd))``.
    Returns at least 1 (a single driver, i.e. no intermediate repeater).
    """
    if driver_resistance <= 0 or driver_capacitance <= 0:
        raise ConfigurationError("repeater sizing needs positive driver R and C")
    r_w, c_w = wire.resistance, wire.capacitance
    if r_w == 0 or c_w == 0:
        return 1
    k = math.sqrt((0.4 * r_w * c_w) / (0.7 * driver_resistance * driver_capacitance))
    return max(1, round(k))


def repeater_stage_delay(wire: Wire, driver_resistance: float,
                         driver_capacitance: float) -> float:
    """Delay of ``wire`` when optimally repeated.

    Splits the wire in :func:`optimal_repeater_count` equal stages, each a
    driver + wire segment + next-stage gate load, and sums the Elmore
    delays.  Used by :mod:`repro.array.scaling` for the 2 Mb GBL/GWL
    extension, where the paper notes "a timing penalty due to larger
    buffers needed on this signal".
    """
    k = optimal_repeater_count(wire, driver_resistance, driver_capacitance)
    segment = Wire(layer=wire.layer, length=wire.length / k)
    per_stage = segment.elmore_delay(driver_resistance, driver_capacitance)
    return k * per_stage
