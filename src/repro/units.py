"""Unit helpers and formatting for circuit-level quantities.

All quantities inside :mod:`repro` are stored in base SI units (seconds,
volts, amperes, farads, joules, watts, metres, square metres).  These
helpers exist so that model code and tests can be written in the units the
paper uses (nanoseconds, femtofarads, picojoules, square micrometres)
without sprinkling powers of ten everywhere.

Example
-------
>>> from repro.units import fF, ns, pJ
>>> cell_cap = 11 * fF
>>> access_time = 1.3 * ns
>>> round(cell_cap / fF, 3)
11.0
"""

from __future__ import annotations

import math

# ---------------------------------------------------------------------------
# Multipliers: write ``3 * ns`` to build a value, ``t / ns`` to read it back.
# ---------------------------------------------------------------------------

# Time
s = 1.0
ms = 1e-3
us = 1e-6
ns = 1e-9
ps = 1e-12

# Capacitance
F = 1.0
uF = 1e-6
nF = 1e-9
pF = 1e-12
fF = 1e-15
aF = 1e-18

# Energy
J = 1.0
mJ = 1e-3
uJ = 1e-6
nJ = 1e-9
pJ = 1e-12
fJ = 1e-15

# Power
W = 1.0
mW = 1e-3
uW = 1e-6
nW = 1e-9
pW = 1e-12

# Current
A = 1.0
mA = 1e-3
uA = 1e-6
nA = 1e-9
pA = 1e-12
fA = 1e-15

# Voltage
V = 1.0
mV = 1e-3
uV = 1e-6

# Resistance
ohm = 1.0
kohm = 1e3
Mohm = 1e6

# Length
m = 1.0
mm = 1e-3
um = 1e-6
nm = 1e-9

# Area
m2 = 1.0
mm2 = 1e-6
um2 = 1e-12

# Frequency
Hz = 1.0
kHz = 1e3
MHz = 1e6
GHz = 1e9

# Bits / bytes (memory capacity)
bit = 1
kb = 1024
Mb = 1024 * 1024

_SI_PREFIXES = [
    (1e-18, "a"),
    (1e-15, "f"),
    (1e-12, "p"),
    (1e-9, "n"),
    (1e-6, "u"),
    (1e-3, "m"),
    (1.0, ""),
    (1e3, "k"),
    (1e6, "M"),
    (1e9, "G"),
    (1e12, "T"),
]


def si_format(value: float, unit: str = "", digits: int = 3) -> str:
    """Format ``value`` with an engineering SI prefix.

    >>> si_format(1.3e-9, 's')
    '1.3 ns'
    >>> si_format(0.0, 'F')
    '0 F'
    """
    if value == 0:  # noqa: L102 - exact zero prints '0', by design
        return f"0 {unit}".rstrip()
    magnitude = abs(value)
    scale, prefix = _SI_PREFIXES[0]
    for candidate_scale, candidate_prefix in _SI_PREFIXES:
        if magnitude >= candidate_scale:
            scale, prefix = candidate_scale, candidate_prefix
    scaled = value / scale
    text = f"{scaled:.{digits}g}"
    return f"{text} {prefix}{unit}".rstrip()


def db(ratio: float) -> float:
    """Power ratio expressed in decibels."""
    if ratio <= 0:
        raise ValueError(f"dB undefined for non-positive ratio {ratio!r}")
    return 10.0 * math.log10(ratio)


def parallel(*values: float) -> float:
    """Combine resistances in parallel (or capacitances in series).

    >>> parallel(2.0, 2.0)
    1.0
    """
    if not values:
        raise ValueError("parallel() needs at least one value")
    if any(v <= 0 for v in values):
        raise ValueError("parallel() needs positive values")
    return 1.0 / sum(1.0 / v for v in values)


def clamp(value: float, low: float, high: float) -> float:
    """Clamp ``value`` into ``[low, high]``."""
    if low > high:
        raise ValueError(f"clamp: low {low} > high {high}")
    return max(low, min(high, value))
