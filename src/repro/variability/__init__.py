"""Monte-Carlo / variability substrate.

The paper evaluates its cell retention with a "6 sigma worst case
monte-carlo simulation"; intra-die variation is also the reason the
underlying SRAM design [10] carries tunable sense amplifiers.  This
package provides the statistical machinery:

* :mod:`repro.variability.distributions` — seeded samplers,
* :mod:`repro.variability.pelgrom` — area-scaled VT mismatch,
* :mod:`repro.variability.montecarlo` — the MC engine and n-sigma
  worst-case estimators,
* :mod:`repro.variability.retention` — the DRAM-cell retention-time
  distribution and its 6-sigma worst case.
"""

from repro.variability.distributions import GaussianSpec, LognormalSpec
from repro.variability.pelgrom import PelgromModel, vth_sigma
from repro.variability.montecarlo import (
    MonteCarloResult,
    run_monte_carlo,
    worst_case_gaussian,
    worst_case_lognormal,
    empirical_quantile,
)
from repro.variability.retention import RetentionModel, RetentionStatistics

__all__ = [
    "GaussianSpec",
    "LognormalSpec",
    "PelgromModel",
    "vth_sigma",
    "MonteCarloResult",
    "run_monte_carlo",
    "worst_case_gaussian",
    "worst_case_lognormal",
    "empirical_quantile",
    "RetentionModel",
    "RetentionStatistics",
]
