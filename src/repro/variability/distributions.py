"""Seeded distribution specifications.

Thin, explicit wrappers over :mod:`numpy.random` so that every random
quantity in the library is described by a declarative spec and every
sample call takes an explicit generator — no hidden global RNG state,
repeatable experiments.
"""

from __future__ import annotations

import dataclasses
import math

import numpy as np

from repro.errors import ConfigurationError


@dataclasses.dataclass(frozen=True)
class GaussianSpec:
    """Normal distribution with ``mean`` and standard deviation ``sigma``."""

    mean: float
    sigma: float

    def __post_init__(self) -> None:
        if self.sigma < 0:
            raise ConfigurationError(f"sigma must be >= 0, got {self.sigma}")

    def sample(self, rng: np.random.Generator, size: int | None = None):
        return rng.normal(self.mean, self.sigma, size=size)

    def quantile_at_sigma(self, n_sigma: float) -> float:
        """Value ``n_sigma`` standard deviations from the mean."""
        return self.mean + n_sigma * self.sigma


@dataclasses.dataclass(frozen=True)
class LognormalSpec:
    """Lognormal distribution parameterised by the *underlying* normal.

    ``median`` is the distribution median (= exp(mu)); ``sigma_ln`` the
    standard deviation of ln(x).  Junction leakage spreads in scaled
    technologies are classically lognormal.
    """

    median: float
    sigma_ln: float

    def __post_init__(self) -> None:
        if self.median <= 0:
            raise ConfigurationError(f"median must be positive, got {self.median}")
        if self.sigma_ln < 0:
            raise ConfigurationError(f"sigma_ln must be >= 0, got {self.sigma_ln}")

    @property
    def mu(self) -> float:
        return math.log(self.median)

    def sample(self, rng: np.random.Generator, size: int | None = None):
        return rng.lognormal(self.mu, self.sigma_ln, size=size)

    def quantile_at_sigma(self, n_sigma: float) -> float:
        """Value at ``n_sigma`` on the underlying normal (+ = high tail)."""
        return math.exp(self.mu + n_sigma * self.sigma_ln)

    def mean(self) -> float:
        return math.exp(self.mu + 0.5 * self.sigma_ln ** 2)
