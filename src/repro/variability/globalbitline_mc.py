"""Hierarchical-bitline Monte-Carlo: the sparse-backend MC workload.

:class:`GlobalBitlineMcModel` is the hierarchy-level companion of
:class:`~repro.variability.localblock_mc.LocalBlockMcModel`: every
sample rebuilds the full ``blocks x cells_per_lbl`` array of
:func:`repro.array.globalbitline.build_globalbitline_read_circuit`
with per-device threshold-voltage draws and a lognormal factor on the
accessed cell's storage capacitor, then measures the differential
GBL-versus-reference signal developed by charge sharing.

At its default size (16 blocks x 16 cells, 289 MNA unknowns) the
model sits well above ``SPARSE_AUTO_THRESHOLD``, so ``backend="auto"``
resolves to the sparse solve path and the batched sample-axis solver
ejects every sample to scalar-sparse — this is the workload the sparse
backend exists for.  The simulation window deliberately stops at the
sense-amplifier enable time: charge sharing through the select device
is the mismatch-sensitive quantity, and it keeps each sample on
Newton's benign rung-0 path.

The model instance is picklable (frozen cell + scalars only), so it
composes with ``--jobs`` process pools as well as ``--batch``.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Dict, Optional, Tuple

import numpy as np

from repro.array.globalbitline import (build_globalbitline_read_circuit,
                                       globalbitline_initial_voltages)
from repro.cells.dram1t1c import Dram1t1cCell
from repro.spice.batch import BatchTransientModel
from repro.spice.elements import Capacitor
from repro.spice.mosfet import MosfetElement
from repro.spice.netlist import Circuit
from repro.spice.transient import TransientResult
from repro.units import ns, ps


@dataclasses.dataclass(frozen=True)
class GlobalBitlineSample:
    """One Monte-Carlo draw: per-device VT shifts + cell-cap factor."""

    vth_shifts: Tuple[float, ...]
    cell_cap_factor: float


class GlobalBitlineMcModel(BatchTransientModel):
    """Differential GBL read signal of one perturbed hierarchy.

    ``draw`` consumes the per-sample generator in a fixed order (one
    normal VT shift per MOSFET in circuit order, then one normal for
    the lognormal storage-capacitor factor), so results are
    independent of batching, chunking and worker count by
    construction.
    """

    def __init__(self, cell: Dram1t1cCell, blocks: int = 16,
                 cells_per_lbl: int = 16, stored_value: int = 1,
                 sigma_vth: float = 0.02,
                 sigma_cap: float = 0.05,  # noqa: L103 - dimensionless lognormal sigma
                 t_stop: float = 0.50 * ns,
                 dt: float = 2.0 * ps) -> None:
        self.cell = cell
        self.blocks = blocks
        self.cells_per_lbl = cells_per_lbl
        self.stored_value = stored_value
        self.sigma_vth = sigma_vth
        self.sigma_cap = sigma_cap
        self.t_stop = t_stop
        self.dt = dt
        self._template_cache: Optional[Circuit] = None
        self._n_mosfets = sum(
            1 for el in self._template().elements
            if isinstance(el, MosfetElement))
        self._accessed_cap = "c_cell0_0"  # selected_block=0, first cell

    def _template(self) -> Circuit:
        # One template per model instance: build() re-adds the same
        # source/switch element objects so repeated samples share the
        # waveform closures (and the pickling caveat below applies).
        if self._template_cache is None:
            self._template_cache = build_globalbitline_read_circuit(
                self.cell, blocks=self.blocks,
                cells_per_lbl=self.cells_per_lbl,
                stored_value=self.stored_value)
        return self._template_cache

    def __getstate__(self) -> dict:
        # Waveform closures make circuits unpicklable; drop the cache
        # so worker processes rebuild their own template.
        state = dict(self.__dict__)
        state["_template_cache"] = None
        return state

    def draw(self, rng: np.random.Generator) -> GlobalBitlineSample:
        shifts = tuple(
            float(v) for v in rng.normal(0.0, self.sigma_vth,
                                         size=self._n_mosfets))
        cap_factor = math.exp(float(rng.normal(0.0, self.sigma_cap)))
        return GlobalBitlineSample(vth_shifts=shifts,
                                   cell_cap_factor=cap_factor)

    def build(self, params: GlobalBitlineSample) -> Circuit:
        template = self._template()
        circuit = Circuit(template.name)
        shifts = iter(params.vth_shifts)
        for element in template.elements:
            if isinstance(element, MosfetElement):
                device = element.device.with_vth_shift(next(shifts))
                element = MosfetElement(element.name, element.drain,
                                        element.gate, element.source,
                                        device)
            elif (isinstance(element, Capacitor)
                  and element.name == self._accessed_cap):
                element = Capacitor(
                    element.name, element.node_a, element.node_b,
                    element.capacitance * params.cell_cap_factor,
                    initial_voltage=element.initial_voltage)
            circuit.add(element)
        return circuit

    def initial_voltages(self, params: GlobalBitlineSample
                         ) -> Optional[Dict[str, float]]:
        return globalbitline_initial_voltages(self.cell)

    def measure(self, result: TransientResult,
                params: GlobalBitlineSample) -> float:
        gbl = result.voltage("gbl")
        ref = result.voltage("gbl_ref")
        return float(gbl[-1] - ref[-1])
