"""Transistor-level local-block Monte-Carlo: the batched MC workload.

The paper's variability story (6-sigma retention margins, Fig. 5) runs
the *same* 16-cell local-block column thousands of times with perturbed
device parameters.  :class:`LocalBlockMcModel` is that workload as a
:class:`~repro.spice.batch.BatchTransientModel`: every sample rebuilds
the column of :func:`repro.array.localblock.build_localblock_read_circuit`
with per-device threshold-voltage draws (Pelgrom-style mismatch) and a
lognormal storage-capacitor factor, simulates the charge-sharing
window, and measures the differential LBL/reference signal the sense
amplifier would latch.

The model deliberately stops at the sense-amplifier enable time: the
charge-sharing phase is the mismatch-sensitive quantity (the paper's
read-signal margin), and it keeps every sample on Newton's benign
rung-0 path where the batched solver shines.  The model instance is
picklable (it holds only the frozen cell and scalars), so it composes
with ``--jobs`` process pools as well as ``--batch`` stacking.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Dict, Optional, Tuple

import numpy as np

from repro.array.localblock import build_localblock_read_circuit
from repro.cells.dram1t1c import Dram1t1cCell
from repro.spice.batch import BatchTransientModel
from repro.spice.elements import Capacitor
from repro.spice.mosfet import MosfetElement
from repro.spice.netlist import Circuit
from repro.spice.transient import TransientResult
from repro.units import ns, ps


@dataclasses.dataclass(frozen=True)
class LocalBlockSample:
    """One Monte-Carlo draw: per-device VT shifts + cell-cap factor."""

    vth_shifts: Tuple[float, ...]
    cell_cap_factor: float


class LocalBlockMcModel(BatchTransientModel):
    """Differential read signal of one perturbed local-block column.

    ``draw`` consumes the per-sample generator in a fixed order (one
    normal VT shift per MOSFET in circuit order, then one normal for
    the lognormal cell-capacitor factor), so results are independent
    of batching, chunking and worker count by construction.
    """

    def __init__(self, cell: Dram1t1cCell, cells_per_lbl: int = 16,
                 stored_value: int = 1, sigma_vth: float = 0.02,
                 sigma_cap: float = 0.05,  # noqa: L103 - dimensionless lognormal sigma
                 t_stop: float = 0.70 * ns,
                 dt: float = 1.0 * ps) -> None:
        self.cell = cell
        self.cells_per_lbl = cells_per_lbl
        self.stored_value = stored_value
        self.sigma_vth = sigma_vth
        self.sigma_cap = sigma_cap
        self.t_stop = t_stop
        self.dt = dt
        self._template_cache: Optional[Circuit] = None
        self._n_mosfets = sum(
            1 for el in self._template().elements
            if isinstance(el, MosfetElement))

    def _template(self) -> Circuit:
        # One template per model instance: every sample's build()
        # re-adds the *same* source/switch element objects, which lets
        # the batched solver prove the waveforms are shared and
        # evaluate each one once per timestep instead of per sample.
        if self._template_cache is None:
            self._template_cache = build_localblock_read_circuit(
                self.cell, cells_per_lbl=self.cells_per_lbl,
                stored_value=self.stored_value)
        return self._template_cache

    def __getstate__(self) -> dict:
        # Waveform closures make circuits unpicklable; drop the cache
        # so worker processes rebuild their own template.
        state = dict(self.__dict__)
        state["_template_cache"] = None
        return state

    def draw(self, rng: np.random.Generator) -> LocalBlockSample:
        shifts = tuple(
            float(v) for v in rng.normal(0.0, self.sigma_vth,
                                         size=self._n_mosfets))
        cap_factor = math.exp(float(rng.normal(0.0, self.sigma_cap)))
        return LocalBlockSample(vth_shifts=shifts,
                                cell_cap_factor=cap_factor)

    def build(self, params: LocalBlockSample) -> Circuit:
        template = self._template()
        circuit = Circuit(template.name)
        shifts = iter(params.vth_shifts)
        for element in template.elements:
            if isinstance(element, MosfetElement):
                device = element.device.with_vth_shift(next(shifts))
                element = MosfetElement(element.name, element.drain,
                                        element.gate, element.source,
                                        device)
            elif isinstance(element, Capacitor) and element.name == "c_cell":
                element = Capacitor(
                    element.name, element.node_a, element.node_b,
                    element.capacitance * params.cell_cap_factor,
                    initial_voltage=element.initial_voltage)
            circuit.add(element)
        return circuit

    def initial_voltages(self, params: LocalBlockSample
                         ) -> Optional[Dict[str, float]]:
        return {
            "pre_rail": self.cell.bitline_precharge,
            "sa_rail": self.cell.bitline_precharge,
            "gbl_gnd": 0.3,
            "prech_ctl": 1.2,
        }

    def measure(self, result: TransientResult,
                params: LocalBlockSample) -> float:
        lbl = result.voltage("lbl")
        ref = result.voltage("ref")
        return float(lbl[-1] - ref[-1])
