"""Monte-Carlo engine and worst-case estimators.

``run_monte_carlo`` evaluates a scalar model under sampled parameters;
the worst-case helpers extrapolate to the paper's "6 sigma worst case",
which brute-force sampling cannot reach (P(6 sigma) ~ 1e-9) — exactly
why analytic tail extrapolation on a fitted distribution is the standard
memory-design practice this module implements.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Callable, Optional

import numpy as np

from repro.errors import ConfigurationError


@dataclasses.dataclass(frozen=True)
class MonteCarloResult:
    """Samples plus summary statistics of one MC run."""

    samples: np.ndarray

    def __post_init__(self) -> None:
        if len(self.samples) < 2:
            raise ConfigurationError("need at least 2 MC samples")

    @property
    def mean(self) -> float:
        return float(np.mean(self.samples))

    @property
    def std(self) -> float:
        return float(np.std(self.samples, ddof=1))

    @property
    def median(self) -> float:
        return float(np.median(self.samples))

    def log_stats(self) -> tuple[float, float]:
        """(mu, sigma) of ln(samples); requires positive samples."""
        if np.any(self.samples <= 0):
            raise ConfigurationError("log statistics need positive samples")
        logs = np.log(self.samples)
        return float(np.mean(logs)), float(np.std(logs, ddof=1))


def run_monte_carlo(model: Callable[[np.random.Generator], float],
                    count: int,
                    seed: Optional[int] = 0) -> MonteCarloResult:
    """Evaluate ``model`` ``count`` times with independent RNG streams.

    Each call receives a generator spawned from a common seed sequence,
    so results are reproducible yet streams are independent.
    """
    if count < 2:
        raise ConfigurationError("count must be >= 2")
    root = np.random.SeedSequence(seed)
    children = root.spawn(count)
    samples = np.array([
        model(np.random.default_rng(child)) for child in children
    ], dtype=float)
    return MonteCarloResult(samples=samples)


def worst_case_gaussian(result: MonteCarloResult, n_sigma: float,
                        tail: str = "low") -> float:
    """n-sigma worst case assuming a Gaussian population.

    ``tail="low"`` returns the low tail (e.g. slowest retention).
    """
    _check_tail(tail)
    sign = -1.0 if tail == "low" else 1.0
    return result.mean + sign * n_sigma * result.std

def worst_case_lognormal(result: MonteCarloResult, n_sigma: float,
                         tail: str = "low") -> float:
    """n-sigma worst case assuming a lognormal population.

    Retention times (inverse of a lognormal leakage) are lognormal; a
    Gaussian fit would produce negative retention at 6 sigma, which is
    the tell that the lognormal fit is the right one.
    """
    _check_tail(tail)
    mu, sigma = result.log_stats()
    sign = -1.0 if tail == "low" else 1.0
    return math.exp(mu + sign * n_sigma * sigma)


def empirical_quantile(result: MonteCarloResult, quantile: float) -> float:
    """Plain empirical quantile of the samples (for validated regions)."""
    if not 0.0 <= quantile <= 1.0:
        raise ConfigurationError("quantile must lie in [0, 1]")
    return float(np.quantile(result.samples, quantile))


def _check_tail(tail: str) -> None:
    if tail not in ("low", "high"):
        raise ConfigurationError(f"tail must be 'low' or 'high', got {tail!r}")
