"""Monte-Carlo engine and worst-case estimators.

``run_monte_carlo`` evaluates a scalar model under sampled parameters;
the worst-case helpers extrapolate to the paper's "6 sigma worst case",
which brute-force sampling cannot reach (P(6 sigma) ~ 1e-9) — exactly
why analytic tail extrapolation on a fitted distribution is the standard
memory-design practice this module implements.

``batch > 1`` vectorizes the sampling axis: when the model is a
:class:`~repro.spice.batch.BatchTransientModel`, consecutive samples are
solved together by the batched stamp-plan Newton engine
(:func:`~repro.spice.batch.eval_model_batch`), which is bit-identical to
the per-sample serial path by construction — so every ``batch`` setting
produces the same statistics and resumes from the same checkpoints.  A
model without a batched twin silently degrades to ``batch=1`` (logged as
an ``mc.batch.fallback`` event).
"""

from __future__ import annotations

import dataclasses
import math
from typing import Callable, List, Optional, Tuple

import numpy as np

from repro import obs
from repro.analysis.effects import deterministic_under_seed
from repro.checkpoint import BudgetClock, Checkpoint, RunBudget
from repro.errors import ConfigurationError, ReproError, SimulationError
from repro.exec import SupervisionPolicy, run_parallel_sweep
from repro.obs.progress import BatchSampleProgress
from repro.spice.batch import BatchTransientModel, eval_model_batch


@dataclasses.dataclass(frozen=True)
class MonteCarloResult:
    """Samples plus summary statistics of one MC run."""

    samples: np.ndarray

    def __post_init__(self) -> None:
        if len(self.samples) < 2:
            raise ConfigurationError("need at least 2 MC samples")

    @property
    def mean(self) -> float:
        return float(np.mean(self.samples))

    @property
    def std(self) -> float:
        return float(np.std(self.samples, ddof=1))

    @property
    def median(self) -> float:
        return float(np.median(self.samples))

    def log_stats(self) -> tuple[float, float]:
        """(mu, sigma) of ln(samples); requires positive samples."""
        if np.any(self.samples <= 0):
            raise ConfigurationError("log statistics need positive samples")
        logs = np.log(self.samples)
        return float(np.mean(logs)), float(np.std(logs, ddof=1))


@deterministic_under_seed
def _mc_eval(model: Callable[[np.random.Generator], float],
             child: np.random.SeedSequence) -> float:
    """One sample from its seed stream (module-level so workers can
    unpickle it); bit-identical to the serial evaluation."""
    return float(model(np.random.default_rng(child)))


def _mc_eval_chunk(model: BatchTransientModel,
                   children) -> List[Tuple[bool, object]]:
    """One batch of samples, solved together (module-level so workers
    can unpickle it).  Returns one ``(ok, payload)`` pair per sample —
    the value on success, the error message on failure — because a
    chunk task must report sample-level failures as *data*: raising
    would throw away its siblings' finished results."""
    outcomes = eval_model_batch(
        model, [np.random.default_rng(child) for child in children])
    return [(ok, float(value) if ok else f"{type(value).__name__}: {value}")
            for ok, value in outcomes]


def _effective_batch(model, batch: int) -> int:
    """Clamp ``batch`` to 1 for models without a batched twin.

    Only a :class:`~repro.spice.batch.BatchTransientModel` carries the
    draw/build/measure decomposition the batched engine needs; any other
    callable runs per-sample exactly as before.  The degradation is
    observable (``mc.batch.fallback``), not an error, so sweep scripts
    can pass ``--batch`` unconditionally.
    """
    if batch < 1:
        raise ConfigurationError("batch must be >= 1")
    if batch > 1 and not isinstance(model, BatchTransientModel):
        obs.metrics().counter("mc.batch.fallback").inc()
        obs.event("mc.batch.fallback", batch=batch,
                  model=type(model).__name__)
        return 1
    return batch


def run_monte_carlo(model: Callable[[np.random.Generator], float],
                    count: int,
                    seed: Optional[int] = 0,
                    jobs: int = 1,
                    batch: int = 1) -> MonteCarloResult:
    """Evaluate ``model`` ``count`` times with independent RNG streams.

    Each call receives a generator spawned from a common seed sequence,
    so results are reproducible yet streams are independent.  With
    ``jobs > 1`` the samples are evaluated by a process pool — sample
    ``i`` still draws from child stream ``i``, so the returned samples
    are bit-identical to a serial run (``model`` must be picklable).

    ``batch > 1`` solves consecutive samples together through the
    batched transient engine when the model supports it (see the module
    docstring); with ``jobs > 1`` each worker solves one chunk of
    ``batch`` samples as a single batch.  Every combination returns
    bit-identical samples.
    """
    if count < 2:
        raise ConfigurationError("count must be >= 2")
    batch = _effective_batch(model, batch)
    root = np.random.SeedSequence(seed)
    children = root.spawn(count)
    if jobs > 1:
        if batch > 1:
            starts = list(range(0, count, batch))
            outcome = run_parallel_sweep(
                [(str(start), _mc_eval_chunk,
                  (model, children[start:start + batch]))
                 for start in starts],
                jobs=jobs)
            if outcome.failures:
                raise SimulationError(
                    f"{len(outcome.failures)} Monte-Carlo batch(es) failed "
                    f"in parallel evaluation: {', '.join(outcome.failures)}")
            values: List[float] = []
            for start in starts:
                for offset, (ok, payload) in enumerate(
                        outcome.results[str(start)]):
                    if not ok:
                        raise SimulationError(
                            f"Monte-Carlo sample {start + offset} "
                            f"failed: {payload}")
                    values.append(payload)
            return MonteCarloResult(samples=np.array(values, dtype=float))
        outcome = run_parallel_sweep(
            [(str(index), _mc_eval, (model, child))
             for index, child in enumerate(children)],
            jobs=jobs)
        if outcome.failures:
            raise SimulationError(
                f"{len(outcome.failures)} Monte-Carlo sample(s) failed "
                f"in parallel evaluation: {', '.join(outcome.failures)}")
        samples = np.array([outcome.results[str(index)]
                            for index in range(count)], dtype=float)
        return MonteCarloResult(samples=samples)
    if batch > 1:
        values = []
        for start in range(0, count, batch):
            outcomes = eval_model_batch(
                model, [np.random.default_rng(child)
                        for child in children[start:start + batch]])
            for ok, value in outcomes:
                if not ok:
                    # The serial path would have raised this very error
                    # at this very sample; re-raising the instance keeps
                    # the two paths indistinguishable to callers.
                    raise value
                values.append(float(value))
        return MonteCarloResult(samples=np.array(values, dtype=float))
    samples = np.array([
        model(np.random.default_rng(child)) for child in children
    ], dtype=float)
    return MonteCarloResult(samples=samples)


@dataclasses.dataclass(frozen=True)
class MonteCarloOutcome:
    """A (possibly partial) resumable MC run with explicit accounting.

    ``result`` is ``None`` when fewer than 2 samples completed (nothing
    statistical can be said); otherwise it summarises the completed
    samples.  ``completed + failed <= attempted <= requested``; samples
    never attempted (budget ran out first) make up the difference.
    """

    result: Optional[MonteCarloResult]
    requested: int
    completed: int
    attempted: int
    failed: int
    exhausted: Optional[str]  # "max_seconds" | "max_failures" | None

    @property
    def complete(self) -> bool:
        return self.completed == self.requested

    def describe(self) -> str:
        parts = [f"{self.completed}/{self.requested} samples"]
        if self.failed:
            parts.append(f"{self.failed} failed")
        if self.exhausted:
            parts.append(f"stopped on {self.exhausted}")
        return ", ".join(parts)


class _SequentialStateCheckpoint:
    """Adapts the executor's ``done``-dict saves to MC's state format.

    :func:`run_parallel_sweep` snapshots a ``{key: value}`` mapping;
    the MC checkpoint schema is ``{"next", "samples", "failed"}``.
    Because the executor merges in submission order, the ``done`` keys
    are always a contiguous run of sample indexes, which translates
    exactly.  A *failed* sample leaves a hole, so mid-run saves advance
    ``next`` only up to the first new failure — resuming from such a
    snapshot deterministically recomputes (and re-fails) the same
    samples, keeping the final statistics bit-identical; the caller
    writes the exact reconciled state once the sweep returns.
    """

    def __init__(self, checkpoint: Checkpoint, state: dict) -> None:
        self._checkpoint = checkpoint
        self._next0 = int(state["next"])
        self._samples0 = list(state["samples"])
        self._failed0 = list(state["failed"])

    def load(self) -> None:
        return None  # the caller already consumed the base state

    def save(self, done: dict) -> None:
        samples = list(self._samples0)
        index = self._next0
        while str(index) in done:
            samples.append(done[str(index)])
            index += 1
        self._checkpoint.save({"next": index, "samples": samples,
                               "failed": list(self._failed0)})


class _ChunkStateCheckpoint:
    """Chunk-task twin of :class:`_SequentialStateCheckpoint`.

    With ``batch > 1`` each sweep item is a whole chunk, keyed by its
    first sample index and valued by the per-sample ``(ok, payload)``
    list from :func:`_mc_eval_chunk`.  Saves expand completed chunks —
    in index order, stopping at the first gap — back into the
    per-sample ``{"next", "samples", "failed"}`` schema, so a
    ``--batch`` run's checkpoints are byte-compatible with (and
    resumable by) ``--jobs 1 --batch 1`` and every other combination.
    """

    def __init__(self, checkpoint: Checkpoint, state: dict) -> None:
        self._checkpoint = checkpoint
        self._next0 = int(state["next"])
        self._samples0 = list(state["samples"])
        self._failed0 = list(state["failed"])

    def load(self) -> None:
        return None  # the caller already consumed the base state

    def save(self, done: dict) -> None:
        samples = list(self._samples0)
        failed = list(self._failed0)
        index = self._next0
        while str(index) in done:
            chunk = done[str(index)]
            for offset, (ok, payload) in enumerate(chunk):
                if ok:
                    samples.append(payload)
                else:
                    failed.append(index + offset)
            index += len(chunk)
        self._checkpoint.save({"next": index, "samples": samples,
                               "failed": failed})


def _run_mc_parallel(model, count: int, children, state: dict,
                     checkpoint: Optional[Checkpoint],
                     budget: Optional[RunBudget],
                     save_every: int, jobs: int,
                     progress=None,
                     policy: Optional[SupervisionPolicy] = None,
                     batch: int = 1) -> Optional[str]:
    """Parallel sample evaluation; folds results into ``state`` in
    index order and returns the exhausted-budget reason (if any)."""
    if (budget is not None and budget.max_failures is not None
            and len(state["failed"]) >= budget.max_failures):
        return "max_failures"
    sub_budget = budget
    if budget is not None and budget.max_failures is not None:
        sub_budget = RunBudget(
            max_seconds=budget.max_seconds,
            max_failures=budget.max_failures - len(state["failed"]))
    start = state["next"]
    if batch > 1:
        return _run_mc_parallel_batched(
            model, count, children, state, checkpoint, sub_budget,
            save_every, jobs, progress, policy, batch, start)
    adapter = (_SequentialStateCheckpoint(checkpoint, state)
               if checkpoint is not None else None)
    outcome = run_parallel_sweep(
        [(str(index), _mc_eval, (model, children[index]))
         for index in range(start, count)],
        jobs=jobs, checkpoint=adapter, budget=sub_budget,
        save_every=save_every, progress=progress, policy=policy)
    failed_keys = set(outcome.failures) | set(outcome.quarantined)
    for index in range(start, count):
        key = str(index)
        if key in outcome.results:
            state["samples"].append(outcome.results[key])
        elif key in failed_keys:
            state["failed"].append(index)
        else:
            break  # the budget stopped the merge before this sample
        state["next"] = index + 1
    if checkpoint is not None:
        checkpoint.save(state)
    return outcome.exhausted


def _run_mc_parallel_batched(model, count: int, children, state: dict,
                             checkpoint: Optional[Checkpoint],
                             sub_budget: Optional[RunBudget],
                             save_every: int, jobs: int,
                             progress, policy, batch: int,
                             start: int) -> Optional[str]:
    """Chunked twin of the parallel merge: each sweep item is one batch
    of ``batch`` samples solved together by a worker.

    Sample-level failures inside a returned chunk are data, not task
    failures (see :func:`_mc_eval_chunk`), so they do not count against
    the executor's failure budget mid-sweep — only against the final
    accounting.  A whole-chunk failure (worker crash) fails every sample
    in the chunk.
    """
    starts = list(range(start, count, batch))
    sizes = [min(batch, count - s) for s in starts]
    adapter = (_ChunkStateCheckpoint(checkpoint, state)
               if checkpoint is not None else None)
    sweep_progress = (BatchSampleProgress(progress, sizes)
                      if progress is not None else None)
    outcome = run_parallel_sweep(
        [(str(s), _mc_eval_chunk, (model, children[s:s + batch]))
         for s in starts],
        jobs=jobs, checkpoint=adapter, budget=sub_budget,
        save_every=max(1, save_every // batch),
        progress=sweep_progress, policy=policy)
    failed_keys = set(outcome.failures) | set(outcome.quarantined)
    for s, size in zip(starts, sizes):
        key = str(s)
        if key in outcome.results:
            for offset, (ok, payload) in enumerate(outcome.results[key]):
                if ok:
                    state["samples"].append(payload)
                else:
                    state["failed"].append(s + offset)
        elif key in failed_keys:
            state["failed"].extend(range(s, s + size))
        else:
            break  # the budget stopped the merge before this chunk
        state["next"] = s + size
    if checkpoint is not None:
        checkpoint.save(state)
    return outcome.exhausted


def run_monte_carlo_resumable(model: Callable[[np.random.Generator], float],
                              count: int,
                              seed: Optional[int] = 0,
                              checkpoint: Optional[Checkpoint] = None,
                              budget: Optional[RunBudget] = None,
                              save_every: int = 64,
                              jobs: int = 1,
                              progress=None,
                              policy: Optional[SupervisionPolicy] = None,
                              batch: int = 1) -> MonteCarloOutcome:
    """Checkpointed, budget-bounded variant of :func:`run_monte_carlo`.

    Sample ``i`` always draws from child stream ``i`` of the seed
    sequence, so a run killed mid-sweep and resumed from its checkpoint
    produces *bit-identical* statistics to an uninterrupted run with the
    same seed.  A sample whose model raises a
    :class:`~repro.errors.ReproError` is recorded as failed and skipped
    (deterministically — the same seed fails the same sample), counting
    against ``budget.max_failures``.

    With ``jobs > 1`` the samples are evaluated by a process pool (the
    model must be picklable); results are merged in index order, the
    checkpoint keeps the sequential schema and is written only by this
    parent process, so serial and parallel runs — and any mix of the
    two across resumes — produce bit-identical statistics.  A worker
    crash is recorded as that one sample failing, not the whole sweep.

    ``progress`` (a :class:`~repro.obs.progress.SweepProgress`) receives
    ``note_restored`` for checkpointed samples and one ``advance`` per
    evaluated sample, which drives the CLI's live status line.

    A ``policy`` (:class:`~repro.exec.SupervisionPolicy`) with any
    knob enabled routes evaluation through the supervised executor —
    per-sample deadlines, hang watchdog, seeded retry/backoff and
    quarantine — at any ``jobs`` setting; quarantined samples are
    counted as failed.

    ``batch > 1`` solves consecutive samples together through the
    batched transient engine when the model supports it (module
    docstring).  The checkpoint keeps the per-sample schema regardless
    of ``batch``, so any run can resume any other run's checkpoint —
    including ``--jobs 1 --batch 1`` resuming a ``--batch 32`` run —
    with bit-identical final statistics.  ``progress`` still counts
    *samples*, not batches.  Budget caveats: the wall-clock budget is
    checked between batches, so a run may overshoot ``max_seconds`` by
    up to one batch; with ``jobs > 1``, sample failures inside a
    successfully returned chunk reach ``max_failures`` accounting only
    when the sweep completes.
    """
    if count < 2:
        raise ConfigurationError("count must be >= 2")
    if save_every < 1:
        raise ConfigurationError("save_every must be >= 1")
    if jobs < 1:
        raise ConfigurationError("jobs must be >= 1")
    batch = _effective_batch(model, batch)
    children = np.random.SeedSequence(seed).spawn(count)

    state: dict = {"next": 0, "samples": [], "failed": []}
    if checkpoint is not None:
        loaded = checkpoint.load()
        if loaded:
            state = {"next": int(loaded.get("next", 0)),
                     "samples": list(loaded.get("samples", [])),
                     "failed": list(loaded.get("failed", []))}
            if progress is not None and state["next"]:
                progress.note_restored(state["next"])

    supervised = policy is not None and policy.enabled
    exhausted: Optional[str] = None
    if (jobs > 1 or supervised) and state["next"] < count:
        exhausted = _run_mc_parallel(model, count, children, state,
                                     checkpoint, budget, save_every, jobs,
                                     progress=progress, policy=policy,
                                     batch=batch)
    elif jobs == 1 and batch > 1 and state["next"] < count:
        clock = BudgetClock(budget)
        clock.failures = len(state["failed"])
        dirty = 0
        index = state["next"]
        while index < count:
            exhausted = clock.exhausted()
            if exhausted is not None:
                break
            stop = min(count, index + batch)
            outcomes = eval_model_batch(
                model, [np.random.default_rng(children[i])
                        for i in range(index, stop)])
            for offset, (ok, value) in enumerate(outcomes):
                if ok:
                    state["samples"].append(float(value))
                    if progress is not None:
                        progress.advance(completed=1)
                else:
                    state["failed"].append(index + offset)
                    clock.fail()
                    if progress is not None:
                        progress.advance(failed=1)
            dirty += stop - index
            index = stop
            state["next"] = index
            if checkpoint is not None and dirty >= save_every:
                checkpoint.save(state)
                dirty = 0
        if checkpoint is not None and dirty:
            checkpoint.save(state)
    elif jobs == 1 and state["next"] < count:
        clock = BudgetClock(budget)
        clock.failures = len(state["failed"])
        dirty = 0
        index = state["next"]
        while index < count:
            exhausted = clock.exhausted()
            if exhausted is not None:
                break
            try:
                value = float(model(np.random.default_rng(children[index])))
            except ReproError:
                state["failed"].append(index)
                clock.fail()
                if progress is not None:
                    progress.advance(failed=1)
            else:
                state["samples"].append(value)
                if progress is not None:
                    progress.advance(completed=1)
            index += 1
            state["next"] = index
            dirty += 1
            if checkpoint is not None and dirty >= save_every:
                checkpoint.save(state)
                dirty = 0
        if checkpoint is not None and dirty:
            checkpoint.save(state)

    samples = np.asarray(state["samples"], dtype=float)
    result = MonteCarloResult(samples=samples) if len(samples) >= 2 else None
    return MonteCarloOutcome(
        result=result,
        requested=count,
        completed=len(samples),
        attempted=state["next"],
        failed=len(state["failed"]),
        exhausted=exhausted,
    )


def worst_case_gaussian(result: MonteCarloResult, n_sigma: float,
                        tail: str = "low") -> float:
    """n-sigma worst case assuming a Gaussian population.

    ``tail="low"`` returns the low tail (e.g. slowest retention).
    """
    _check_tail(tail)
    sign = -1.0 if tail == "low" else 1.0
    return result.mean + sign * n_sigma * result.std

def worst_case_lognormal(result: MonteCarloResult, n_sigma: float,
                         tail: str = "low") -> float:
    """n-sigma worst case assuming a lognormal population.

    Retention times (inverse of a lognormal leakage) are lognormal; a
    Gaussian fit would produce negative retention at 6 sigma, which is
    the tell that the lognormal fit is the right one.
    """
    _check_tail(tail)
    mu, sigma = result.log_stats()
    sign = -1.0 if tail == "low" else 1.0
    return math.exp(mu + sign * n_sigma * sigma)


def empirical_quantile(result: MonteCarloResult, quantile: float) -> float:
    """Plain empirical quantile of the samples (for validated regions)."""
    if not 0.0 <= quantile <= 1.0:
        raise ConfigurationError("quantile must lie in [0, 1]")
    return float(np.quantile(result.samples, quantile))


def _check_tail(tail: str) -> None:
    if tail not in ("low", "high"):
        raise ConfigurationError(f"tail must be 'low' or 'high', got {tail!r}")
