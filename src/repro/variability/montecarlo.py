"""Monte-Carlo engine and worst-case estimators.

``run_monte_carlo`` evaluates a scalar model under sampled parameters;
the worst-case helpers extrapolate to the paper's "6 sigma worst case",
which brute-force sampling cannot reach (P(6 sigma) ~ 1e-9) — exactly
why analytic tail extrapolation on a fitted distribution is the standard
memory-design practice this module implements.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Callable, Optional

import numpy as np

from repro.checkpoint import BudgetClock, Checkpoint, RunBudget
from repro.errors import ConfigurationError, ReproError


@dataclasses.dataclass(frozen=True)
class MonteCarloResult:
    """Samples plus summary statistics of one MC run."""

    samples: np.ndarray

    def __post_init__(self) -> None:
        if len(self.samples) < 2:
            raise ConfigurationError("need at least 2 MC samples")

    @property
    def mean(self) -> float:
        return float(np.mean(self.samples))

    @property
    def std(self) -> float:
        return float(np.std(self.samples, ddof=1))

    @property
    def median(self) -> float:
        return float(np.median(self.samples))

    def log_stats(self) -> tuple[float, float]:
        """(mu, sigma) of ln(samples); requires positive samples."""
        if np.any(self.samples <= 0):
            raise ConfigurationError("log statistics need positive samples")
        logs = np.log(self.samples)
        return float(np.mean(logs)), float(np.std(logs, ddof=1))


def run_monte_carlo(model: Callable[[np.random.Generator], float],
                    count: int,
                    seed: Optional[int] = 0) -> MonteCarloResult:
    """Evaluate ``model`` ``count`` times with independent RNG streams.

    Each call receives a generator spawned from a common seed sequence,
    so results are reproducible yet streams are independent.
    """
    if count < 2:
        raise ConfigurationError("count must be >= 2")
    root = np.random.SeedSequence(seed)
    children = root.spawn(count)
    samples = np.array([
        model(np.random.default_rng(child)) for child in children
    ], dtype=float)
    return MonteCarloResult(samples=samples)


@dataclasses.dataclass(frozen=True)
class MonteCarloOutcome:
    """A (possibly partial) resumable MC run with explicit accounting.

    ``result`` is ``None`` when fewer than 2 samples completed (nothing
    statistical can be said); otherwise it summarises the completed
    samples.  ``completed + failed <= attempted <= requested``; samples
    never attempted (budget ran out first) make up the difference.
    """

    result: Optional[MonteCarloResult]
    requested: int
    completed: int
    attempted: int
    failed: int
    exhausted: Optional[str]  # "max_seconds" | "max_failures" | None

    @property
    def complete(self) -> bool:
        return self.completed == self.requested

    def describe(self) -> str:
        parts = [f"{self.completed}/{self.requested} samples"]
        if self.failed:
            parts.append(f"{self.failed} failed")
        if self.exhausted:
            parts.append(f"stopped on {self.exhausted}")
        return ", ".join(parts)


def run_monte_carlo_resumable(model: Callable[[np.random.Generator], float],
                              count: int,
                              seed: Optional[int] = 0,
                              checkpoint: Optional[Checkpoint] = None,
                              budget: Optional[RunBudget] = None,
                              save_every: int = 64) -> MonteCarloOutcome:
    """Checkpointed, budget-bounded variant of :func:`run_monte_carlo`.

    Sample ``i`` always draws from child stream ``i`` of the seed
    sequence, so a run killed mid-sweep and resumed from its checkpoint
    produces *bit-identical* statistics to an uninterrupted run with the
    same seed.  A sample whose model raises a
    :class:`~repro.errors.ReproError` is recorded as failed and skipped
    (deterministically — the same seed fails the same sample), counting
    against ``budget.max_failures``.
    """
    if count < 2:
        raise ConfigurationError("count must be >= 2")
    if save_every < 1:
        raise ConfigurationError("save_every must be >= 1")
    children = np.random.SeedSequence(seed).spawn(count)

    state: dict = {"next": 0, "samples": [], "failed": []}
    if checkpoint is not None:
        loaded = checkpoint.load()
        if loaded:
            state = {"next": int(loaded.get("next", 0)),
                     "samples": list(loaded.get("samples", [])),
                     "failed": list(loaded.get("failed", []))}

    clock = BudgetClock(budget)
    clock.failures = len(state["failed"])
    exhausted: Optional[str] = None
    dirty = 0
    index = state["next"]
    while index < count:
        exhausted = clock.exhausted()
        if exhausted is not None:
            break
        try:
            value = float(model(np.random.default_rng(children[index])))
        except ReproError:
            state["failed"].append(index)
            clock.fail()
        else:
            state["samples"].append(value)
        index += 1
        state["next"] = index
        dirty += 1
        if checkpoint is not None and dirty >= save_every:
            checkpoint.save(state)
            dirty = 0
    if checkpoint is not None and dirty:
        checkpoint.save(state)

    samples = np.asarray(state["samples"], dtype=float)
    result = MonteCarloResult(samples=samples) if len(samples) >= 2 else None
    return MonteCarloOutcome(
        result=result,
        requested=count,
        completed=len(samples),
        attempted=state["next"],
        failed=len(state["failed"]),
        exhausted=exhausted,
    )


def worst_case_gaussian(result: MonteCarloResult, n_sigma: float,
                        tail: str = "low") -> float:
    """n-sigma worst case assuming a Gaussian population.

    ``tail="low"`` returns the low tail (e.g. slowest retention).
    """
    _check_tail(tail)
    sign = -1.0 if tail == "low" else 1.0
    return result.mean + sign * n_sigma * result.std

def worst_case_lognormal(result: MonteCarloResult, n_sigma: float,
                         tail: str = "low") -> float:
    """n-sigma worst case assuming a lognormal population.

    Retention times (inverse of a lognormal leakage) are lognormal; a
    Gaussian fit would produce negative retention at 6 sigma, which is
    the tell that the lognormal fit is the right one.
    """
    _check_tail(tail)
    mu, sigma = result.log_stats()
    sign = -1.0 if tail == "low" else 1.0
    return math.exp(mu + sign * n_sigma * sigma)


def empirical_quantile(result: MonteCarloResult, quantile: float) -> float:
    """Plain empirical quantile of the samples (for validated regions)."""
    if not 0.0 <= quantile <= 1.0:
        raise ConfigurationError("quantile must lie in [0, 1]")
    return float(np.quantile(result.samples, quantile))


def _check_tail(tail: str) -> None:
    if tail not in ("low", "high"):
        raise ConfigurationError(f"tail must be 'low' or 'high', got {tail!r}")
