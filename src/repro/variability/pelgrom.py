"""Pelgrom-law transistor mismatch.

Threshold-voltage mismatch between identically drawn devices scales as
``sigma_VT = A_VT / sqrt(W * L)`` (Pelgrom).  A_VT at 90 nm is about
3.5 mV.um for standard devices; DRAM array transistors are engineered
for lower mismatch and use longer channels.
"""

from __future__ import annotations

import dataclasses
import math

import numpy as np

from repro.errors import ConfigurationError
from repro.tech.transistor import Mosfet
from repro.units import mV, um
from repro.variability.distributions import GaussianSpec

DEFAULT_AVT_90NM = 3.5 * mV * um  # V * m


def vth_sigma(device: Mosfet, avt: float = DEFAULT_AVT_90NM) -> float:
    """Standard deviation of the VT mismatch of ``device``, volts."""
    if avt <= 0:
        raise ConfigurationError("A_VT must be positive")
    gate_length = device.node.feature_size * device.length_factor
    area = device.width * gate_length
    return avt / math.sqrt(area)


@dataclasses.dataclass(frozen=True)
class PelgromModel:
    """Mismatch model for a device population.

    Attributes
    ----------
    avt:
        Pelgrom VT coefficient, V*m.
    abeta:
        Relative current-factor mismatch coefficient, sqrt(m^2)
        (fractional sigma = abeta / sqrt(W*L)).
    """

    avt: float = DEFAULT_AVT_90NM
    abeta: float = 0.01 * um  # ~1 % for a 1 um^2 device

    def vth_spec(self, device: Mosfet) -> GaussianSpec:
        """Zero-mean VT shift distribution for ``device``."""
        return GaussianSpec(mean=0.0, sigma=vth_sigma(device, self.avt))

    def beta_sigma(self, device: Mosfet) -> float:
        """Fractional (relative) drive-factor mismatch sigma."""
        gate_length = device.node.feature_size * device.length_factor
        area = device.width * gate_length
        return self.abeta / math.sqrt(area)

    def sample_vth_shifts(self, device: Mosfet, rng: np.random.Generator,
                          count: int) -> np.ndarray:
        """Sample ``count`` VT shifts, volts."""
        if count < 1:
            raise ConfigurationError("count must be >= 1")
        return self.vth_spec(device).sample(rng, count)
