"""DRAM cell retention-time statistics.

A 1T1C cell loses its stored charge through (a) subthreshold leakage of
the access transistor towards the standby-precharged bitline, (b)
reverse-bias junction/GIDL leakage of the storage node, and (c) leakage
through the capacitor dielectric itself (significant only for the
scratch-pad CMOS gate capacitance).  Retention time is the time until
the stored level has moved by more than the readable margin:

    t_ret = C_cell * margin / I_leak

Across a matrix, VT mismatch (Pelgrom) multiplies the subthreshold term
exponentially and the junction term has a lognormal spread; the
resulting retention distribution has the classic heavy low tail that
forces the conservative 6-sigma worst case the paper quotes.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Optional

import numpy as np

from repro.errors import ConfigurationError
from repro.tech.capacitor import StorageCapacitor
from repro.tech.leakage import junction_leakage
from repro.tech.node import TechnologyNode
from repro.tech.transistor import Mosfet
from repro.variability.distributions import LognormalSpec
from repro.variability.montecarlo import (
    MonteCarloResult,
    run_monte_carlo,
    worst_case_lognormal,
)
from repro.variability.pelgrom import PelgromModel


@dataclasses.dataclass(frozen=True)
class RetentionStatistics:
    """Summary of a retention Monte-Carlo run (all times in seconds)."""

    typical: float
    mean: float
    worst_case: float
    n_sigma: float
    sample_count: int

    def __post_init__(self) -> None:
        if not 0 < self.worst_case <= self.typical:
            raise ConfigurationError(
                "worst-case retention must be positive and <= typical"
            )


@dataclasses.dataclass(frozen=True)
class RetentionModel:
    """Retention-time model of one cell design.

    Parameters
    ----------
    node:
        Technology node (supplies junction leakage constants).
    capacitor:
        The storage capacitor.
    access_device:
        The cell access transistor.
    bitline_standby_voltage:
        Voltage the (precharged) local bitline holds in standby; the
        worst-leaking stored level faces the full difference to it.
    readable_margin:
        Allowed stored-level decay before a read fails, volts.
    mismatch:
        Pelgrom mismatch model for the access transistor.
    junction_sigma_ln:
        Lognormal spread (sigma of ln) of the junction leakage across
        cells.  0.7-1.0 is typical of reported retention distributions.
    """

    node: TechnologyNode
    capacitor: StorageCapacitor
    access_device: Mosfet
    bitline_standby_voltage: float = 1.0
    readable_margin: float = 0.25
    mismatch: PelgromModel = dataclasses.field(default_factory=PelgromModel)
    junction_sigma_ln: float = 0.8
    wordline_low_voltage: float = 0.0

    def __post_init__(self) -> None:
        if self.readable_margin <= 0:
            raise ConfigurationError("readable margin must be positive")
        if self.bitline_standby_voltage < 0:
            raise ConfigurationError("bitline standby voltage must be >= 0")

    # -- leakage components ------------------------------------------------

    def subthreshold_leak(self, vth_shift: float = 0.0) -> float:
        """Access-device subthreshold leakage for a stored '0', amperes.

        A stored '0' (cell at ~0 V) under a precharged bitline sees
        ``vgs = V_WL_low`` and ``vds = V_BL``; this is the worst level.
        DRAM processes drive the idle word line *below* ground
        (``wordline_low_voltage < 0``) to push this term down — a key
        reason DRAM-technology retention beats the logic scratch-pad.
        A VT shift multiplies the current exponentially through the swing.
        """
        base = self.access_device.drain_current(
            vgs=self.wordline_low_voltage, vds=self.bitline_standby_voltage
        )
        swing = self.access_device.params.subthreshold_swing
        return base * 10.0 ** (-vth_shift / swing)

    def junction_leak(self) -> float:
        """Median storage-node junction leakage, amperes."""
        return junction_leakage(self.node, self.access_device.width)

    def dielectric_leak(self) -> float:
        """Capacitor dielectric leakage, amperes."""
        return self.capacitor.dielectric_leakage

    def nominal_leakage(self) -> float:
        """Total median cell leakage, amperes."""
        return self.subthreshold_leak() + self.junction_leak() + self.dielectric_leak()

    # -- retention ------------------------------------------------------------

    def nominal_retention(self) -> float:
        """Median (typical-cell) retention time, seconds."""
        return self.capacitor.capacitance * self.readable_margin / self.nominal_leakage()

    def sample_retention(self, rng: np.random.Generator) -> float:
        """Draw the retention time of one random cell, seconds."""
        vth_shift = float(self.mismatch.vth_spec(self.access_device).sample(rng))
        junction_spec = LognormalSpec(
            median=self.junction_leak() if self.junction_leak() > 0 else 1e-30,  # noqa: L101 - lognormal floor
            sigma_ln=self.junction_sigma_ln,
        )
        junction = float(junction_spec.sample(rng))
        # Capacitance varies a few percent (trench depth / litho).
        cap = self.capacitor.capacitance * float(rng.normal(1.0, 0.03))
        cap = max(cap, 0.5 * self.capacitor.capacitance)
        leak = self.subthreshold_leak(vth_shift) + junction + self.dielectric_leak()
        return cap * self.readable_margin / leak

    def sample_many(self, rng: np.random.Generator,
                    count: int) -> np.ndarray:
        """Vectorised draw of ``count`` cell retention times, seconds.

        Identical distribution to :meth:`sample_retention` but one
        array-sized draw per mechanism — the fast path for matrix-scale
        populations (the binned-refresh planner samples every cell of
        the array).
        """
        if count < 1:
            raise ConfigurationError("count must be >= 1")
        sigma = self.mismatch.vth_spec(self.access_device).sigma
        vth_shifts = rng.normal(0.0, sigma, size=count)
        swing = self.access_device.params.subthreshold_swing
        sub = self.subthreshold_leak() * 10.0 ** (-vth_shifts / swing)
        junction_median = max(self.junction_leak(), 1e-30)  # noqa: L101 - lognormal floor
        junction = rng.lognormal(math.log(junction_median),
                                 self.junction_sigma_ln, size=count)
        caps = self.capacitor.capacitance * rng.normal(1.0, 0.03,
                                                       size=count)
        caps = np.maximum(caps, 0.5 * self.capacitor.capacitance)
        leak = sub + junction + self.dielectric_leak()
        return caps * self.readable_margin / leak

    def monte_carlo(self, count: int = 2000,
                    seed: Optional[int] = 0) -> MonteCarloResult:
        """Run a retention Monte-Carlo over ``count`` cells."""
        return run_monte_carlo(self.sample_retention, count=count, seed=seed)

    def statistics(self, count: int = 2000, n_sigma: float = 6.0,
                   seed: Optional[int] = 0) -> RetentionStatistics:
        """Retention summary with the paper's n-sigma worst case.

        The worst case extrapolates the lognormal fit of the sampled
        retention distribution down to ``n_sigma`` — matching the
        paper's "6 sigma worst case monte-carlo" methodology.
        """
        result = self.monte_carlo(count=count, seed=seed)
        worst = worst_case_lognormal(result, n_sigma=n_sigma, tail="low")
        return RetentionStatistics(
            typical=result.median,
            mean=result.mean,
            worst_case=worst,
            n_sigma=n_sigma,
            sample_count=count,
        )
