"""Golden tests for the determinism audit: every D3xx rule has a
triggering snippet and a fixed counterpart that stays silent."""

import textwrap

from repro.analysis.purity import AUDIT_RULES, audit_paths


def audit_file(tmp_path, source, name="snippet.py"):
    path = tmp_path / name
    path.write_text(textwrap.dedent(source))
    return audit_paths([path])


def rules_of(diagnostics):
    return sorted({d.rule for d in diagnostics})


class TestD300Parse:
    def test_syntax_error_is_reported_not_raised(self, tmp_path):
        diags = audit_file(tmp_path, "def broken(:\n")
        assert rules_of(diags) == ["D300"]
        assert diags[0].line == 1

    def test_valid_file_has_no_d300(self, tmp_path):
        assert audit_file(tmp_path, "def fine():\n    return 1\n") == []


class TestD301UnseededRng:
    def test_unseeded_rng_in_seeded_module(self, tmp_path):
        diags = audit_file(tmp_path, """
            import numpy as np

            def draw():
                return np.random.default_rng().normal()
            """, name="montecarlo.py")
        assert rules_of(diags) == ["D301"]
        assert "without a seed" in diags[0].message

    def test_module_global_stream_in_seeded_module(self, tmp_path):
        diags = audit_file(tmp_path, """
            import numpy as np

            def draw():
                return np.random.normal()
            """, name="designspace.py")
        assert rules_of(diags) == ["D301"]
        assert "module-global" in diags[0].message

    def test_seeded_generator_is_clean(self, tmp_path):
        assert audit_file(tmp_path, """
            import numpy as np

            def draw(seed):
                return np.random.default_rng(seed).normal()
            """, name="montecarlo.py") == []

    def test_rng_reached_through_call_chain(self, tmp_path):
        diags = audit_file(tmp_path, """
            import random

            def helper():
                return random.random()

            def sample():
                return helper()
            """, name="optimizer.py")
        assert "D301" in rules_of(diags)
        # reported once, at the draw site, naming the chain context
        assert len([d for d in diags if d.rule == "D301"]) == 1

    def test_worker_submitted_function_is_audited(self, tmp_path):
        diags = audit_file(tmp_path, """
            import numpy as np
            from repro.exec import run_parallel_sweep

            def job(index):
                return np.random.default_rng().normal()

            def sweep():
                items = [(str(i), job, (i,)) for i in range(4)]
                return run_parallel_sweep(items, jobs=2)
            """)
        assert rules_of(diags) == ["D301"]
        assert "worker" in diags[0].message

    def test_worker_function_with_seed_argument_is_clean(self, tmp_path):
        assert audit_file(tmp_path, """
            import numpy as np
            from repro.exec import run_parallel_sweep

            def job(child):
                return np.random.default_rng(child).normal()

            def sweep(children):
                items = [(str(i), job, (c,))
                         for i, c in enumerate(children)]
                return run_parallel_sweep(items, jobs=2)
            """) == []

    def test_unrelated_module_rng_not_flagged(self, tmp_path):
        # Outside the seeded pipelines and any worker closure, an
        # unseeded draw is not this audit's business.
        assert audit_file(tmp_path, """
            import numpy as np

            def demo():
                return np.random.default_rng().normal()
            """) == []


class TestD302AmbientTaint:
    def test_wall_clock_into_fingerprint(self, tmp_path):
        diags = audit_file(tmp_path, """
            import time
            from repro.obs import config_fingerprint

            def fingerprint(config):
                stamp = time.time()
                config["generated_at"] = stamp
                return config_fingerprint(config)
            """)
        assert rules_of(diags) == ["D302"]
        assert "time.time()" in diags[0].message

    def test_pid_into_checkpoint_save(self, tmp_path):
        diags = audit_file(tmp_path, """
            import os

            def snapshot(checkpoint, done):
                payload = {"done": done, "pid": os.getpid()}
                checkpoint.save(payload)
            """)
        assert rules_of(diags) == ["D302"]

    def test_environ_into_run_report(self, tmp_path):
        diags = audit_file(tmp_path, """
            import os
            from repro.obs import build_run_report

            def report(registry, tracer):
                tag = os.environ.get("RUN_TAG", "")
                return build_run_report(tag, {"tag": tag},
                                        registry, tracer)
            """)
        assert rules_of(diags) == ["D302"]

    def test_explicit_config_only_is_clean(self, tmp_path):
        assert audit_file(tmp_path, """
            from repro.obs import config_fingerprint

            def fingerprint(config):
                return config_fingerprint(config)
            """) == []

    def test_clock_not_reaching_a_sink_is_clean(self, tmp_path):
        assert audit_file(tmp_path, """
            import time

            def elapsed(start):
                return time.monotonic() - start
            """) == []


class TestD303WorkerGlobalMutation:
    def test_module_global_store_in_worker(self, tmp_path):
        diags = audit_file(tmp_path, """
            from repro.exec import run_parallel_sweep

            CACHE = {}

            def job(key):
                CACHE[key] = key * 2
                return key

            def sweep():
                items = [(str(i), job, (i,)) for i in range(4)]
                return run_parallel_sweep(items, jobs=2)
            """)
        assert rules_of(diags) == ["D303"]
        assert "CACHE" in diags[0].message

    def test_global_statement_rebind_in_worker(self, tmp_path):
        diags = audit_file(tmp_path, """
            from repro.exec import run_parallel_sweep

            _COUNT = 0

            def job(key):
                global _COUNT
                _COUNT += 1
                return key

            def sweep():
                return run_parallel_sweep([("a", job, (1,))], jobs=2)
            """)
        assert rules_of(diags) == ["D303"]

    def test_returning_data_instead_is_clean(self, tmp_path):
        assert audit_file(tmp_path, """
            from repro.exec import run_parallel_sweep

            def job(key):
                return {key: key * 2}

            def sweep():
                items = [(str(i), job, (i,)) for i in range(4)]
                return run_parallel_sweep(items, jobs=2)
            """) == []

    def test_parent_side_global_mutation_is_clean(self, tmp_path):
        # The same mutation outside any worker closure is allowed.
        assert audit_file(tmp_path, """
            CACHE = {}

            def remember(key):
                CACHE[key] = key * 2
            """) == []

    def test_noqa_suppresses_sanctioned_mutation(self, tmp_path):
        assert audit_file(tmp_path, """
            from repro.exec import run_parallel_sweep

            CACHE = {}

            def job(key):
                CACHE[key] = key * 2  # noqa: D303
                return key

            def sweep():
                return run_parallel_sweep([("a", job, (1,))], jobs=2)
            """) == []


class TestD304SetIterationOrder:
    def test_set_loop_feeding_append(self, tmp_path):
        diags = audit_file(tmp_path, """
            def merge(results):
                out = []
                seen = set(results)
                for key in seen:
                    out.append(key)
                return out
            """)
        assert rules_of(diags) == ["D304"]

    def test_comprehension_over_set(self, tmp_path):
        diags = audit_file(tmp_path, """
            import json

            def serialize(keys):
                pending = {k for k in keys if k}
                return json.dumps([k for k in pending])
            """)
        assert rules_of(diags) == ["D304"]

    def test_sorted_iteration_is_clean(self, tmp_path):
        assert audit_file(tmp_path, """
            def merge(results):
                out = []
                seen = set(results)
                for key in sorted(seen):
                    out.append(key)
                return out
            """) == []

    def test_membership_only_set_is_clean(self, tmp_path):
        assert audit_file(tmp_path, """
            def filter_new(items, done):
                seen = set(done)
                return [i for i in items if i not in seen]
            """) == []


class TestD305ReductionOrder:
    def test_accumulation_over_as_completed(self, tmp_path):
        diags = audit_file(tmp_path, """
            from concurrent.futures import as_completed

            def total(futures):
                acc = 0.0
                for future in as_completed(futures):
                    acc += future.result()
                return acc
            """)
        assert rules_of(diags) == ["D305"]
        assert diags[0].severity.value == "info"

    def test_sum_over_set(self, tmp_path):
        diags = audit_file(tmp_path, """
            def total(values):
                pool = set(values)
                return sum(v * 2.0 for v in pool)
            """)
        assert rules_of(diags) == ["D305"]

    def test_submission_order_accumulation_is_clean(self, tmp_path):
        assert audit_file(tmp_path, """
            def total(futures):
                acc = 0.0
                for future in futures:
                    acc += future.result()
                return acc
            """) == []


class TestD306AnnotationContradiction:
    def test_pure_function_reading_clock(self, tmp_path):
        diags = audit_file(tmp_path, """
            import time
            from repro.analysis.effects import pure

            @pure
            def stamp():
                return time.time()
            """)
        assert rules_of(diags) == ["D306"]
        assert "declared pure" in diags[0].message

    def test_contradiction_found_through_callee(self, tmp_path):
        diags = audit_file(tmp_path, """
            import time
            from repro.analysis.effects import pure

            def helper():
                return time.time()

            @pure
            def stamp():
                return helper()
            """)
        assert rules_of(diags) == ["D306"]
        assert "helper" in diags[0].message  # witness names the origin

    def test_deterministic_under_seed_rejects_global_stream(self, tmp_path):
        diags = audit_file(tmp_path, """
            import numpy as np
            from repro.analysis.effects import deterministic_under_seed

            @deterministic_under_seed
            def sample():
                return np.random.normal()
            """)
        assert rules_of(diags) == ["D306"]

    def test_deterministic_under_seed_allows_passed_rng(self, tmp_path):
        assert audit_file(tmp_path, """
            from repro.analysis.effects import deterministic_under_seed

            @deterministic_under_seed
            def sample(rng):
                return rng.normal()
            """) == []

    def test_honest_pure_function_is_clean(self, tmp_path):
        assert audit_file(tmp_path, """
            from repro.analysis.effects import pure

            @pure
            def area(width, height):
                return width * height
            """) == []


class TestD307ExceptionSwallow:
    def test_swallow_in_supervision_module(self, tmp_path):
        diags = audit_file(tmp_path, """
            def harvest(future):
                try:
                    return future.result()
                except Exception:
                    pass
            """, name="supervise.py")
        assert rules_of(diags) == ["D307"]
        assert "swallows" in diags[0].message

    def test_bare_except_in_worker_code(self, tmp_path):
        diags = audit_file(tmp_path, """
            from repro.exec import run_parallel_sweep

            def job(x):
                try:
                    return 1.0 / x
                except:
                    return 0.0

            def sweep(items):
                return run_parallel_sweep(
                    [(k, job, (v,)) for k, v in items], jobs=2)
            """)
        assert "D307" in rules_of(diags)
        assert "bare except" in next(
            d.message for d in diags if d.rule == "D307")

    def test_reraise_is_clean(self, tmp_path):
        assert audit_file(tmp_path, """
            def harvest(future):
                try:
                    return future.result()
                except Exception as exc:
                    raise RuntimeError("sample lost") from exc
            """, name="supervise.py") == []

    def test_structured_record_is_clean(self, tmp_path):
        assert audit_file(tmp_path, """
            from repro import obs

            def harvest(future, failures):
                try:
                    return future.result()
                except Exception as exc:
                    obs.event("exec.supervise.crash", detail=str(exc))
            """, name="supervise.py") == []

    def test_narrow_except_is_clean(self, tmp_path):
        assert audit_file(tmp_path, """
            def load(path):
                try:
                    return path.read_text()
                except OSError:
                    pass
            """, name="checkpoint.py") == []

    def test_noqa_escape_hatch(self, tmp_path):
        assert audit_file(tmp_path, """
            def beat(channel, key):
                try:
                    channel.put_nowait(key)
                except Exception:  # noqa: D307 - parent may be gone
                    pass
            """, name="supervise.py") == []

    def test_other_modules_not_in_scope(self, tmp_path):
        assert audit_file(tmp_path, """
            def parse(text):
                try:
                    return float(text)
                except Exception:
                    pass
            """, name="helpers.py") == []


class TestRuleTable:
    def test_every_rule_has_severity_and_summary(self):
        assert sorted(AUDIT_RULES) == [
            "D300", "D301", "D302", "D303", "D304", "D305", "D306",
            "D307"]
