"""Call-graph construction and effect propagation through the shapes
the executor actually sees: decorators, ``functools.partial``, lambdas
handed to ``run_parallel_sweep``, and methods resolved via ``self``."""

import textwrap

from repro.analysis.callgraph import build_callgraph
from repro.analysis.purity import audit_paths


def graph_of(tmp_path, source, name="snippet.py"):
    path = tmp_path / name
    path.write_text(textwrap.dedent(source))
    return build_callgraph([path])


def audit_file(tmp_path, source, name="snippet.py"):
    path = tmp_path / name
    path.write_text(textwrap.dedent(source))
    return audit_paths([path])


def rules_of(diagnostics):
    return sorted({d.rule for d in diagnostics})


class TestGraphConstruction:
    def test_module_function_call_resolves(self, tmp_path):
        graph = graph_of(tmp_path, """
            def helper():
                return 1

            def caller():
                return helper()
            """)
        assert "snippet.helper" in graph.callees("snippet.caller")

    def test_self_method_call_resolves(self, tmp_path):
        graph = graph_of(tmp_path, """
            class Engine:
                def _step(self):
                    return 1

                def run(self):
                    return self._step()
            """)
        assert "snippet.Engine._step" in graph.callees("snippet.Engine.run")

    def test_method_inherited_from_base_resolves(self, tmp_path):
        graph = graph_of(tmp_path, """
            class Base:
                def _step(self):
                    return 1

            class Engine(Base):
                def run(self):
                    return self._step()
            """)
        assert "snippet.Base._step" in graph.callees("snippet.Engine.run")

    def test_local_binding_shadows_module_function(self, tmp_path):
        graph = graph_of(tmp_path, """
            def target():
                return 1

            def caller(target):
                return target()
            """)
        assert "snippet.target" not in graph.callees("snippet.caller")

    def test_subscript_store_does_not_shadow_global(self, tmp_path):
        # ``CACHE[k] = v`` mutates the module global, it does not bind a
        # local named CACHE.
        graph = graph_of(tmp_path, """
            CACHE = {}

            def remember(key):
                CACHE[key] = key
            """)
        fn = graph.functions["snippet.remember"]
        assert "CACHE" not in fn.local_bindings
        assert "CACHE" in graph.modules["snippet"].global_names

    def test_syntax_error_recorded_not_raised(self, tmp_path):
        bad = tmp_path / "broken.py"
        bad.write_text("def nope(:\n")
        graph = build_callgraph([bad])
        assert len(graph.parse_failures) == 1


class TestEffectPropagation:
    def test_through_decorator(self, tmp_path):
        # The decorator's wrapper reads the clock; the decorated
        # function inherits that effect, contradicting @pure.
        diags = audit_file(tmp_path, """
            import time
            from repro.analysis.effects import pure

            def timed(fn):
                def wrapper(*args):
                    time.time()
                    return fn(*args)
                return wrapper

            @pure
            @timed
            def compute(x):
                return x * 2
            """)
        assert rules_of(diags) == ["D306"]

    def test_through_functools_partial(self, tmp_path):
        # Binding a function with functools.partial before submission
        # still puts it in the worker closure.
        diags = audit_file(tmp_path, """
            import functools
            import numpy as np
            from repro.exec import run_parallel_sweep

            def draw(index):
                return np.random.default_rng().normal()

            def sweep():
                jobs = [functools.partial(draw, i) for i in range(2)]
                items = [(str(i), job, ()) for i, job in enumerate(jobs)]
                return run_parallel_sweep(items, jobs=2)
            """)
        assert rules_of(diags) == ["D301"]

    def test_lambda_passed_to_run_parallel_sweep(self, tmp_path):
        diags = audit_file(tmp_path, """
            import numpy as np
            from repro.exec import run_parallel_sweep

            def sweep():
                items = [("a", lambda: np.random.default_rng().normal(),
                          ())]
                return run_parallel_sweep(items, jobs=2)
            """)
        assert rules_of(diags) == ["D301"]
        assert "lambda" in diags[0].message

    def test_method_submitted_via_self(self, tmp_path):
        diags = audit_file(tmp_path, """
            import numpy as np
            from repro.exec import run_parallel_sweep

            class Runner:
                def _job(self, index):
                    return np.random.default_rng().normal()

                def run(self):
                    items = [(str(i), self._job, (i,)) for i in range(2)]
                    return run_parallel_sweep(items, jobs=2)
            """)
        assert rules_of(diags) == ["D301"]

    def test_seeded_method_submitted_via_self_is_clean(self, tmp_path):
        assert audit_file(tmp_path, """
            import numpy as np
            from repro.exec import run_parallel_sweep

            class Runner:
                def _job(self, child):
                    return np.random.default_rng(child).normal()

                def run(self, children):
                    items = [(str(i), self._job, (c,))
                             for i, c in enumerate(children)]
                    return run_parallel_sweep(items, jobs=2)
            """) == []

    def test_observational_callee_stops_propagation(self, tmp_path):
        # Telemetry emission is excused from purity, but an
        # observational function drawing unseeded randomness is not.
        diags = audit_file(tmp_path, """
            import time
            from repro.analysis.effects import observational, pure

            @observational
            def emit(name):
                return (name, time.time())

            @pure
            def compute(x):
                emit("compute")
                return x * 2
            """)
        assert diags == []

    def test_mutates_global_state_shifts_report_to_call_site(self, tmp_path):
        # The annotated mutator itself is sanctioned; the worker-side
        # call site is where the audit points, so the noqa lives where
        # the decision is made.
        diags = audit_file(tmp_path, """
            from repro.analysis.effects import mutates_global_state
            from repro.exec import run_parallel_sweep

            _STATE = {}

            @mutates_global_state
            def install(key):
                _STATE[key] = key

            def job(key):
                install(key)
                return key

            def sweep():
                return run_parallel_sweep([("a", job, (1,))], jobs=2)
            """)
        assert rules_of(diags) == ["D303"]
        assert "install" in diags[0].message
