"""CLI behaviour of ``repro lint`` / ``repro check``: exit codes,
formats, baseline workflow."""

import json

import pytest

from repro.cli import main

BAD_SOURCE = "cap = 11e-15\nratio = 0.38\n"
CLEAN_SOURCE = "from repro.units import fF\ncap = 11 * fF\n"


@pytest.fixture
def bad_file(tmp_path):
    path = tmp_path / "bad.py"
    path.write_text(BAD_SOURCE)
    return path


@pytest.fixture
def clean_file(tmp_path):
    path = tmp_path / "clean.py"
    path.write_text(CLEAN_SOURCE)
    return path


class TestLintCli:
    def test_clean_file_exits_zero(self, clean_file, capsys):
        assert main(["lint", str(clean_file)]) == 0
        assert "no findings" in capsys.readouterr().out

    def test_errors_exit_one(self, bad_file, capsys):
        assert main(["lint", str(bad_file)]) == 1
        out = capsys.readouterr().out
        assert "[L101]" in out and "11e-15" in out

    def test_json_format(self, bad_file, capsys):
        assert main(["lint", "--format", "json", str(bad_file)]) == 1
        data = json.loads(capsys.readouterr().out)
        assert data["version"] == 1
        assert data["diagnostics"][0]["rule"] == "L101"

    def test_warnings_pass_without_strict(self, tmp_path, capsys):
        path = tmp_path / "warn.py"
        path.write_text("def f(bitline_cap):\n    '''No units.'''\n")
        assert main(["lint", str(path)]) == 0
        assert main(["lint", "--strict", str(path)]) == 1

    def test_write_baseline_then_clean_run(self, bad_file, tmp_path,
                                           capsys):
        baseline = tmp_path / "baseline.json"
        assert main(["lint", "--write-baseline", str(baseline),
                     str(bad_file)]) == 0
        assert baseline.is_file()
        assert main(["lint", "--baseline", str(baseline),
                     str(bad_file)]) == 0
        out = capsys.readouterr().out
        assert "no findings" in out

    def test_write_baseline_bare_flag_uses_default_name(self, bad_file,
                                                        tmp_path,
                                                        monkeypatch):
        monkeypatch.chdir(tmp_path)
        assert main(["lint", "--write-baseline", "--", str(bad_file)]) == 0
        assert (tmp_path / ".repro-lint-baseline.json").is_file()

    def test_baseline_does_not_hide_new_findings(self, bad_file, tmp_path):
        baseline = tmp_path / "baseline.json"
        main(["lint", "--write-baseline", str(baseline), str(bad_file)])
        bad_file.write_text(BAD_SOURCE + "load = 3e-12\n")
        assert main(["lint", "--baseline", str(baseline),
                     str(bad_file)]) == 1

    def test_baseline_auto_discovered_from_path(self, bad_file, tmp_path):
        main(["lint", "--write-baseline",
              str(tmp_path / ".repro-lint-baseline.json"), str(bad_file)])
        assert main(["lint", str(bad_file)]) == 0
        assert main(["lint", "--no-baseline", str(bad_file)]) == 1


UNSEEDED_SOURCE = ("import numpy as np\n"
                   "def draw():\n"
                   "    return np.random.default_rng().normal()\n")
SET_ORDER_SOURCE = ("def merge(results):\n"
                    "    out = []\n"
                    "    for key in set(results):\n"
                    "        out.append(key)\n"
                    "    return out\n")


@pytest.fixture
def unseeded_file(tmp_path):
    # The montecarlo module name puts every function under the
    # seeded-determinism contract (rule D301).
    path = tmp_path / "montecarlo.py"
    path.write_text(UNSEEDED_SOURCE)
    return path


class TestAuditCli:
    def test_clean_file_exits_zero(self, clean_file, capsys):
        assert main(["audit", str(clean_file)]) == 0
        assert "no findings" in capsys.readouterr().out

    def test_unseeded_rng_exits_one(self, unseeded_file, capsys):
        assert main(["audit", str(unseeded_file)]) == 1
        out = capsys.readouterr().out
        assert "[D301]" in out and "seed" in out

    def test_json_format(self, unseeded_file, capsys):
        assert main(["audit", "--format", "json",
                     str(unseeded_file)]) == 1
        data = json.loads(capsys.readouterr().out)
        assert data["version"] == 1
        assert data["diagnostics"][0]["rule"] == "D301"

    def test_warnings_pass_without_strict(self, tmp_path, capsys):
        path = tmp_path / "ordering.py"
        path.write_text(SET_ORDER_SOURCE)
        assert main(["audit", str(path)]) == 0
        assert main(["audit", "--strict", str(path)]) == 1
        assert "[D304]" in capsys.readouterr().out

    def test_write_baseline_then_clean_run(self, unseeded_file, tmp_path,
                                           capsys):
        baseline = tmp_path / "audit-baseline.json"
        assert main(["audit", "--write-baseline", str(baseline),
                     str(unseeded_file)]) == 0
        assert baseline.is_file()
        assert main(["audit", "--baseline", str(baseline),
                     str(unseeded_file)]) == 0
        assert "no findings" in capsys.readouterr().out

    def test_audits_whole_package_directory(self, tmp_path, capsys):
        pkg = tmp_path / "pkg"
        pkg.mkdir()
        (pkg / "__init__.py").write_text("")
        (pkg / "montecarlo.py").write_text(UNSEEDED_SOURCE)
        (pkg / "other.py").write_text("def fine():\n    return 1\n")
        assert main(["audit", str(pkg)]) == 1
        assert "[D301]" in capsys.readouterr().out


class TestCheckCli:
    def test_builtin_registry_passes(self, capsys):
        assert main(["check", "--no-baseline"]) == 0

    def test_strict_flags_builtin_warnings(self, capsys):
        # The local-block netlists carry known zero-capacitance warnings.
        assert main(["check", "--strict", "--no-baseline"]) == 1

    def test_bad_model_file_exits_one(self, tmp_path, capsys):
        path = tmp_path / "models.py"
        path.write_text(
            "from repro.spice import Circuit\n"
            "EMPTY = Circuit('cli-empty')\n")
        assert main(["check", "--no-defaults", "--no-baseline",
                     str(path)]) == 1
        assert "[M201]" in capsys.readouterr().out

    def test_json_format(self, tmp_path, capsys):
        path = tmp_path / "models.py"
        path.write_text(
            "from repro.spice import Circuit\n"
            "EMPTY = Circuit('cli-empty-json')\n")
        assert main(["check", "--no-defaults", "--no-baseline",
                     "--format", "json", str(path)]) == 1
        data = json.loads(capsys.readouterr().out)
        assert data["errors"] == 1

    def test_profile_keeps_exit_code(self, tmp_path, capsys):
        path = tmp_path / "models.py"
        path.write_text(
            "from repro.spice import Circuit\n"
            "EMPTY = Circuit('cli-empty-profiled')\n")
        assert main(["check", "--no-defaults", "--no-baseline",
                     "--profile", str(path)]) == 1
