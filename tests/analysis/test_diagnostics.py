"""The shared diagnostics core: rendering, JSON, baselines."""

import json

import pytest

from repro.analysis import (Baseline, Diagnostic, Severity,
                            diagnostics_to_json, format_diagnostics)


def make(rule="L101", severity=Severity.ERROR, message="bare magnitude",
         path="src/x.py", line=3, column=7, hint=None):
    return Diagnostic(rule=rule, severity=severity, message=message,
                      path=path, line=line, column=column, hint=hint)


class TestDiagnostic:
    def test_location_includes_line_and_column(self):
        assert make().location() == "src/x.py:3:7"

    def test_location_without_line(self):
        assert make(line=None, column=None).location() == "src/x.py"

    def test_fingerprint_is_line_independent(self):
        assert make(line=3).fingerprint() == make(line=99).fingerprint()

    def test_fingerprint_changes_with_message(self):
        assert make().fingerprint() != make(message="other").fingerprint()

    def test_to_dict_round_trips_fields(self):
        data = make(hint="use fF").to_dict()
        assert data["rule"] == "L101"
        assert data["severity"] == "error"
        assert data["line"] == 3
        assert data["hint"] == "use fF"
        assert data["fingerprint"] == make().fingerprint()

    def test_severity_ranks_order(self):
        assert (Severity.ERROR.rank > Severity.WARNING.rank
                > Severity.INFO.rank)


class TestFormatting:
    def test_text_output_has_one_line_per_finding_plus_tally(self):
        text = format_diagnostics([make(), make(rule="L102", line=9,
                                        severity=Severity.WARNING)])
        lines = text.splitlines()
        assert lines[0].startswith("src/x.py:3:7: error [L101]")
        assert lines[-1] == "2 finding(s): 1 error(s), 1 warning(s)"

    def test_hint_rendered_indented(self):
        text = format_diagnostics([make(hint="write 11 * fF")])
        assert "    hint: write 11 * fF" in text

    def test_json_output_is_versioned_and_counted(self):
        data = json.loads(diagnostics_to_json([make(), make(rule="M203")]))
        assert data["version"] == 1
        assert data["count"] == 2
        assert data["errors"] == 2
        assert {d["rule"] for d in data["diagnostics"]} == {"L101", "M203"}

    def test_output_sorted_by_path_then_line(self):
        data = json.loads(diagnostics_to_json(
            [make(path="b.py", line=1), make(path="a.py", line=9),
             make(path="a.py", line=2)]))
        keys = [(d["path"], d["line"]) for d in data["diagnostics"]]
        assert keys == sorted(keys)


class TestBaseline:
    def test_filter_removes_accepted_findings(self):
        accepted, fresh = make(), make(message="new defect")
        baseline = Baseline.from_diagnostics([accepted])
        assert baseline.filter([accepted, fresh]) == [fresh]

    def test_save_load_round_trip(self, tmp_path):
        baseline = Baseline.from_diagnostics([make(), make(rule="M208")])
        path = baseline.save(tmp_path / "base.json")
        loaded = Baseline.load(path)
        assert len(loaded) == 2
        assert make() in loaded

    def test_load_rejects_unknown_version(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"version": 99, "suppressions": {}}))
        with pytest.raises(ValueError, match="version"):
            Baseline.load(path)

    def test_discover_walks_parent_directories(self, tmp_path):
        Baseline.from_diagnostics([make()]).save(
            tmp_path / Baseline.DEFAULT_NAME)
        nested = tmp_path / "src" / "pkg"
        nested.mkdir(parents=True)
        found = Baseline.discover(nested)
        assert found is not None and make() in found

    def test_discover_returns_none_without_file(self, tmp_path):
        assert Baseline.discover(tmp_path) is None

    def test_discover_stops_at_git_root(self, tmp_path):
        # A baseline *above* the repository must never leak in: the
        # walk stops at the first directory holding a .git entry.
        Baseline.from_diagnostics([make()]).save(
            tmp_path / Baseline.DEFAULT_NAME)
        repo = tmp_path / "repo"
        (repo / ".git").mkdir(parents=True)
        nested = repo / "src" / "pkg"
        nested.mkdir(parents=True)
        assert Baseline.discover(nested) is None

    def test_discover_stops_at_pyproject_root(self, tmp_path):
        Baseline.from_diagnostics([make()]).save(
            tmp_path / Baseline.DEFAULT_NAME)
        repo = tmp_path / "repo"
        repo.mkdir()
        (repo / "pyproject.toml").write_text("[project]\n")
        nested = repo / "src"
        nested.mkdir()
        assert Baseline.discover(nested) is None

    def test_discover_finds_baseline_at_repo_root(self, tmp_path):
        # The repository root itself is still searched before the
        # walk stops there.
        repo = tmp_path / "repo"
        (repo / ".git").mkdir(parents=True)
        Baseline.from_diagnostics([make()]).save(
            repo / Baseline.DEFAULT_NAME)
        nested = repo / "src"
        nested.mkdir()
        found = Baseline.discover(nested)
        assert found is not None and make() in found
