"""Docs stay honest: every implemented rule ID must appear in the
README rule table, and every rule ID the README mentions must exist.
CI runs this file in the static-analysis job."""

import pathlib
import re

from repro.analysis.diagnostics import all_rules

REPO = pathlib.Path(__file__).resolve().parents[2]
README = REPO / "README.md"

_RULE_ID = re.compile(r"\b([LMD][123]\d\d)\b")


def readme_rule_ids():
    return set(_RULE_ID.findall(README.read_text()))


class TestDocsSync:
    def test_every_implemented_rule_is_documented(self):
        missing = sorted(set(all_rules()) - readme_rule_ids())
        assert not missing, (
            f"rule IDs implemented but absent from README.md: {missing}")

    def test_every_documented_rule_is_implemented(self):
        phantom = sorted(readme_rule_ids() - set(all_rules()))
        assert not phantom, (
            f"rule IDs mentioned in README.md but not implemented: "
            f"{phantom}")
