"""L108: event-kind naming and cross-file payload-schema discipline."""

import textwrap

from repro.analysis import lint_paths, lint_source
from repro.analysis.lint import EventKinds


def rules_of(source, path="src/example.py", event_registry=None):
    return [d.rule for d in lint_source(textwrap.dedent(source), path,
                                        event_registry=event_registry)]


class TestL108Naming:
    def test_dotted_lower_snake_passes(self):
        assert rules_of(
            'obs.event("refresh.dropped", index=1, cycle=2)\n') == []

    def test_undotted_kind_fires(self):
        assert rules_of('obs.event("dropped", index=1)\n') == ["L108"]

    def test_camel_case_kind_fires(self):
        assert rules_of('obs.event("Refresh.Dropped")\n') == ["L108"]

    def test_emit_method_checked_too(self):
        assert rules_of('log.emit("not snake case!")\n') == ["L108"]
        assert rules_of('log.emit("cache.eviction", set=1)\n') == []

    def test_non_constant_kind_skipped(self):
        assert rules_of("obs.event(kind, x=1)\n") == []

    def test_unrelated_calls_skipped(self):
        assert rules_of('logger.info("Not An Event")\n') == []

    def test_noqa_suppresses(self):
        assert rules_of(
            'obs.event("UPPERCASE")  # noqa: L108\n') == []

    def test_hint_names_an_example_kind(self):
        (finding,) = lint_source('obs.event("bad")\n', "src/x.py")
        assert "refresh.dropped" in (finding.hint or "")


class TestL108PayloadSchema:
    def _lint_two(self, first, second):
        registry = EventKinds()
        lint_source(first, "src/a.py", event_registry=registry)
        lint_source(second, "src/b.py", event_registry=registry)
        return registry.conflicts()

    def test_same_signature_across_files_is_fine(self):
        conflicts = self._lint_two(
            'obs.event("cache.eviction", set=1, tag=2)\n',
            'obs.event("cache.eviction", tag=9, set=0)\n')  # order-free
        assert conflicts == []

    def test_conflicting_signatures_fire(self):
        conflicts = self._lint_two(
            'obs.event("cache.eviction", set=1, tag=2)\n',
            'obs.event("cache.eviction", victim=9)\n')
        assert [d.rule for d in conflicts] == ["L108"]
        (diag,) = conflicts
        assert "cache.eviction" in diag.message
        assert "src/a.py:1" in diag.message
        assert diag.path == "src/b.py"

    def test_distinct_kinds_never_conflict(self):
        conflicts = self._lint_two(
            'obs.event("a.one", x=1)\n',
            'obs.event("b.two", y=2)\n')
        assert conflicts == []

    def test_star_payload_forwarding_skipped(self):
        conflicts = self._lint_two(
            'obs.event("a.one", x=1)\n',
            'obs.event("a.one", **payload)\n')
        assert conflicts == []

    def test_conflict_within_one_file(self):
        registry = EventKinds()
        lint_source(textwrap.dedent("""\
            obs.event("a.one", x=1)
            obs.event("a.one", y=2)
            """), "src/a.py", event_registry=registry)
        assert [d.rule for d in registry.conflicts()] == ["L108"]


class TestSelfDiscipline:
    def test_shipped_tree_has_no_event_conflicts(self):
        diagnostics = [d for d in lint_paths(["src/repro"])
                       if d.rule == "L108"]
        assert diagnostics == []
