"""Rule M212: physical consistency of fault/resilience configs."""

from __future__ import annotations

from repro.analysis.diagnostics import Severity
from repro.analysis.model import (MODEL_RULES, check_fault_plan,
                                  check_object, check_repair_model,
                                  check_run_budget)
from repro.checkpoint import RunBudget
from repro.faults import (FaultPlan, RefreshFault, RepairModel,
                          SenseAmpOutlier, StuckBit, WeakCell,
                          generate_fault_plan)


def rules(diagnostics):
    return {d.rule for d in diagnostics}


def errors(diagnostics):
    return [d for d in diagnostics if d.severity is Severity.ERROR]


class TestFaultPlanRule:
    def test_rule_registered(self):
        assert "M212" in MODEL_RULES

    def test_generated_plan_is_clean(self):
        plan = generate_fault_plan(seed=1, n_blocks=16, rows_per_block=8,
                                   weak_cell_fraction=0.05,
                                   refresh_drop_fraction=0.05,
                                   refresh_late_fraction=0.05)
        assert check_fault_plan(plan) == []

    def test_weak_cells_beyond_matrix_flagged(self):
        plan = FaultPlan(
            seed=0, n_blocks=1, rows_per_block=2,
            weak_cells=tuple(WeakCell(0, r % 2, 1e-4) for r in range(3)))
        found = check_fault_plan(plan)
        assert any("exceed" in d.message for d in errors(found))

    def test_out_of_range_coordinates_flagged(self):
        plan = FaultPlan(
            seed=0, n_blocks=2, rows_per_block=4,
            weak_cells=(WeakCell(5, 0, 1e-4),),
            stuck_bits=(StuckBit(0, 0, 99),),
            sa_outliers=(SenseAmpOutlier(9, 1.2),),
            refresh_faults=(RefreshFault(100, "drop"),))
        found = errors(check_fault_plan(plan))
        assert len(found) == 4
        assert rules(found) == {"M212"}

    def test_unphysical_values_flagged(self):
        plan = FaultPlan(
            seed=0, n_blocks=2, rows_per_block=4,
            weak_cells=(WeakCell(0, 0, -1e-4),),
            sa_outliers=(SenseAmpOutlier(0, 0.5),),
            refresh_faults=(RefreshFault(1, "late", delay_cycles=0),))
        messages = [d.message for d in errors(check_fault_plan(plan))]
        assert any("non-positive retention" in m for m in messages)
        assert any("cannot" in m and "shrink" in m for m in messages)
        assert any("positive delay" in m for m in messages)

    def test_duplicates_are_warnings(self):
        plan = FaultPlan(
            seed=0, n_blocks=2, rows_per_block=4,
            weak_cells=(WeakCell(0, 1, 1e-4), WeakCell(0, 1, 2e-4)),
            refresh_faults=(RefreshFault(3, "drop"),
                            RefreshFault(3, "late", delay_cycles=2)))
        found = check_fault_plan(plan)
        warnings = [d for d in found if d.severity is Severity.WARNING]
        assert len(warnings) == 2
        assert not errors(found)


class TestRepairAndBudgetRules:
    def test_sane_repair_is_clean(self):
        assert check_repair_model(RepairModel()) == []

    def test_guard_below_one_flagged(self):
        found = check_repair_model(RepairModel(retention_guard=0.5))
        assert any("retention_guard" in d.message for d in errors(found))

    def test_repair_capacity_exceeding_block_rows_flagged(self):
        plan = FaultPlan(seed=0, n_blocks=2, rows_per_block=4)
        found = check_repair_model(RepairModel(spare_rows_per_block=8),
                                   plan=plan)
        assert any("repair capacity" in d.message for d in errors(found))

    def test_unlimited_budget_is_clean(self):
        assert check_run_budget(RunBudget()) == []

    def test_nonpositive_ceilings_flagged(self):
        found = check_run_budget(RunBudget(max_seconds=0.0,
                                           max_failures=-1))
        assert len(found) == 2
        assert rules(found) == {"M212"}


class TestDispatch:
    def test_check_object_routes_fault_types(self):
        plan = FaultPlan(seed=0, n_blocks=1, rows_per_block=2,
                         refresh_faults=(RefreshFault(50, "drop"),))
        assert rules(check_object(plan)) == {"M212"}
        assert rules(check_object(RepairModel(correctable_bits=-1))) == \
            {"M212"}
        assert rules(check_object(RunBudget(max_seconds=-5))) == {"M212"}

    def test_check_hook_discovers_example_targets(self):
        from repro.analysis.model import check_python_file
        found = check_python_file("examples/chaos_run.py")
        # The example ships one deliberately suspicious budget.
        assert rules(found) == {"M212"}
        assert all(d.severity is Severity.WARNING for d in found)
