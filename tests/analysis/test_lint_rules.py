"""Golden-diagnostic tests: every lint rule fires on a known-bad snippet."""

import textwrap

from repro.analysis import LINT_RULES, lint_paths, lint_source
from repro.analysis.lint import MetricNames


def rules_of(source, path="src/example.py"):
    return [d.rule for d in lint_source(textwrap.dedent(source), path)]


class TestL100Parse:
    def test_syntax_error_is_reported_not_raised(self):
        findings = lint_source("def broken(:\n", "bad.py")
        assert [d.rule for d in findings] == ["L100"]
        assert findings[0].severity.value == "error"


class TestL101BareMagnitude:
    def test_scientific_float_fires(self):
        assert rules_of("cap = 11e-15\n") == ["L101"]

    def test_plain_decimal_passes(self):
        assert rules_of("ratio = 0.38\n") == []

    def test_units_module_is_exempt(self):
        assert rules_of("fF = 1e-15\n", "src/repro/units.py") == []

    def test_units_multiplier_passes(self):
        assert rules_of(
            "from repro.units import fF\ncap = 11 * fF\n") == []

    def test_tolerance_kwarg_exempt(self):
        assert rules_of("solve(x, tol=1e-9)\n") == []

    def test_tolerance_default_exempt(self):
        assert rules_of("def f(x, rtol=1e-6):\n    return x\n") == []

    def test_tolerance_named_assignment_exempt(self):
        assert rules_of("_V_TOL = 1e-9\n") == []

    def test_tolerance_named_loop_exempt(self):
        assert rules_of(
            "for gmin in (1e-3, 1e-6):\n    pass\n") == []

    def test_hint_suggests_units_rewrite(self):
        (finding,) = lint_source("cap = 11e-15\n", "src/example.py")
        assert "fF" in (finding.hint or "")

    def test_noqa_suppresses(self):
        assert rules_of("k = 8.6e-5  # noqa: L101\n") == []

    def test_bare_noqa_suppresses_all(self):
        assert rules_of("k = 8.6e-5  # noqa\n") == []


class TestL102FloatEquality:
    def test_float_literal_comparison_fires(self):
        assert "L102" in rules_of("ok = x == 1.5\n")

    def test_float_annotated_param_fires(self):
        assert "L102" in rules_of(
            "def f(v: float):\n    return v == other\n")

    def test_float_annotated_self_field_fires(self):
        assert "L102" in rules_of("""\
            class Row:
                dram: float
                def bad(self):
                    return self.dram == 0
            """)

    def test_int_comparison_passes(self):
        assert rules_of("ok = n == 3\n") == []

    def test_inequality_operators_pass(self):
        assert rules_of("ok = x <= 1.5\n") == []


class TestL103UnitDocs:
    def test_cap_param_without_units_warns(self):
        assert rules_of("""\
            def step(bitline_cap):
                '''Signal step.'''
            """) == ["L103"]

    def test_documented_farads_passes(self):
        assert rules_of("""\
            def step(bitline_cap):
                '''Signal step; bitline_cap in farads.'''
            """) == []

    def test_voltage_family_recognised(self):
        assert rules_of("""\
            def drive(wordline_voltage):
                '''Overdrive level, volts.'''
            """) == []

    def test_finding_is_warning(self):
        (finding,) = lint_source(textwrap.dedent("""\
            def f(row_energy):
                '''Refresh cost.'''
            """), "x.py")
        assert finding.severity.value == "warning"


class TestL104MutableDefault:
    def test_list_literal_default_fires(self):
        assert rules_of("def f(items=[]):\n    return items\n") == ["L104"]

    def test_dict_call_default_fires(self):
        assert rules_of("def f(opts=dict()):\n    return opts\n") == ["L104"]

    def test_none_default_passes(self):
        assert rules_of("def f(items=None):\n    return items\n") == []


class TestL105ObsNaming:
    def test_camel_case_metric_fires(self):
        assert rules_of(
            "obs.counter('RefreshStalls', 1)\n") == ["L105"]

    def test_dotted_lower_snake_passes(self):
        assert rules_of(
            "obs.counter('refresh.stall_cycles', 1)\n") == []

    def test_span_names_checked(self):
        assert rules_of("with obs.span('Bad Name'):\n    pass\n") == ["L105"]

    def test_fstring_literal_prefix_checked(self):
        assert rules_of(
            "obs.span(f'Policy.{name}')\n") == ["L105"]


class TestL106KindCollisions:
    def test_conflicting_kinds_across_files_fire(self, tmp_path):
        (tmp_path / "a.py").write_text("obs.counter('cache.hits', 1)\n")
        (tmp_path / "b.py").write_text("obs.gauge('cache.hits', 2.0)\n")
        findings = lint_paths([tmp_path])
        assert [d.rule for d in findings] == ["L106"]
        assert "cache.hits" in findings[0].message

    def test_consistent_kind_passes(self, tmp_path):
        (tmp_path / "a.py").write_text("obs.counter('cache.hits', 1)\n")
        (tmp_path / "b.py").write_text("obs.counter('cache.hits', 2)\n")
        assert lint_paths([tmp_path]) == []

    def test_registry_records_first_use(self):
        registry = MetricNames()
        lint_source("obs.counter('a.b', 1)\n", "x.py", registry)
        assert "counter" in registry.uses["a.b"]


class TestL107StampLoop:
    def test_per_element_stamp_loop_fires(self):
        assert rules_of(
            "for element in order:\n"
            "    element.stamp(ctx)\n") == ["L107"]

    def test_nested_stamp_call_still_fires(self):
        assert rules_of(
            "for el in elements:\n"
            "    if el.active:\n"
            "        el.stamp(ctx)\n") == ["L107"]

    def test_severity_is_warning(self):
        (finding,) = lint_source(
            "for el in elements:\n    el.stamp(ctx)\n", "src/example.py")
        assert finding.severity.value == "warning"
        assert "StampPlan" in (finding.hint or "")

    def test_stamping_other_object_passes(self):
        # The loop target is not what is being stamped.
        assert rules_of(
            "for el in elements:\n"
            "    plan.stamp(el)\n") == []

    def test_stamp_outside_loop_passes(self):
        assert rules_of("element.stamp(ctx)\n") == []

    def test_noqa_on_the_for_line_suppresses(self):
        assert rules_of(
            "for element in order:  # noqa: L107\n"
            "    element.stamp(ctx)\n") == []


class TestL109DirectLinalgSolve:
    def test_np_linalg_solve_fires(self):
        assert rules_of(
            "import numpy as np\nx = np.linalg.solve(a, b)\n") == ["L109"]

    def test_numpy_spelling_fires(self):
        assert rules_of(
            "import numpy\nx = numpy.linalg.inv(a)\n") == ["L109"]

    def test_scipy_lu_factor_fires(self):
        assert rules_of(
            "import scipy\nf = scipy.linalg.lu_factor(a)\n") == ["L109"]

    def test_from_scipy_import_linalg_fires(self):
        assert rules_of(
            "from scipy import linalg\nf = linalg.lu_solve(lu, b)\n"
        ) == ["L109"]

    def test_linalg_module_is_exempt(self):
        assert rules_of(
            "import numpy as np\nx = np.linalg.solve(a, b)\n",
            "src/repro/spice/linalg.py") == []

    def test_fixed_counterpart_passes(self):
        assert rules_of(
            "from repro.spice.linalg import lu_solve_dense\n"
            "x = lu_solve_dense(a, b)\n") == []

    def test_linalgerror_reference_passes(self):
        assert rules_of(
            "import numpy as np\n"
            "def f():\n"
            "    raise np.linalg.LinAlgError('singular')\n") == []

    def test_severity_is_error(self):
        (finding,) = lint_source(
            "import numpy as np\nx = np.linalg.solve(a, b)\n",
            "src/example.py")
        assert finding.severity.value == "error"
        assert "repro.spice.linalg" in (finding.hint or "")

    def test_noqa_suppresses(self):
        assert rules_of(
            "import numpy as np\n"
            "x = np.linalg.solve(a, b)  # noqa: L109\n") == []


class TestRuleCatalogue:
    def test_every_rule_has_a_description(self):
        assert set(LINT_RULES) == {f"L10{i}" for i in range(10)}
