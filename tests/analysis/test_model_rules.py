"""Golden-diagnostic tests: every model-checker rule fires on a
known-bad circuit or configuration."""

import dataclasses
import textwrap

from repro.analysis import MODEL_RULES, check_circuit, check_python_file
from repro.analysis.model import (check_macro, check_object,
                                  check_refresh_policy, check_scope,
                                  check_targets, check_tech_node,
                                  check_organization)
from repro.core import FastDramDesign
from repro.refresh import LocalizedRefresh
from repro.spice import (Capacitor, Circuit, CurrentSource, Resistor,
                         VoltageSource, dc)
from repro.spice.subckt import Scope
from repro.tech import TechnologyNode
from repro.units import kb, ms


def rules_of(diagnostics):
    return [d.rule for d in diagnostics]


class TestCircuitRules:
    def test_m201_empty_circuit(self):
        assert rules_of(check_circuit(Circuit("empty"))) == ["M201"]

    def test_m202_no_ground(self):
        c = Circuit("ungrounded")
        c.add(Resistor("r1", "a", "b", 1e3))
        assert "M202" in rules_of(check_circuit(c))

    def test_m203_current_source_into_nothing(self):
        c = Circuit("float")
        c.add(VoltageSource("v1", "in", "0", dc(1.0)))
        c.add(Resistor("r1", "in", "0", 1e3))
        c.add(CurrentSource("i1", "0", "nowhere", dc(1e-6)))
        findings = [d for d in check_circuit(c) if d.rule == "M203"]
        assert len(findings) == 1
        assert "'nowhere'" in findings[0].message

    def test_m204_dangling_node(self):
        c = Circuit("typo")
        c.add(VoltageSource("v1", "in", "0", dc(1.0)))
        c.add(Resistor("r1", "in", "mid", 1e3))
        c.add(Resistor("r2", "midd", "0", 1e3))  # misspelt
        rules = rules_of(check_circuit(c))
        assert rules.count("M204") == 2  # both halves of the typo

    def test_m205_voltage_source_loop(self):
        c = Circuit("loop")
        c.add(VoltageSource("v1", "a", "0", dc(1.0)))
        c.add(VoltageSource("v2", "a", "0", dc(1.2)))
        c.add(Resistor("r1", "a", "0", 1e3))
        findings = [d for d in check_circuit(c) if d.rule == "M205"]
        assert len(findings) == 1
        assert findings[0].severity.value == "error"

    def test_m206_undamped_dynamic_node(self):
        from repro.spice import MosfetElement
        from repro.tech.node import Polarity, VtFlavor
        from repro.tech.transistor import Mosfet

        node = TechnologyNode.logic_90nm()
        m = Mosfet(node, Polarity.NMOS, VtFlavor.SVT,
                   width=node.width_units(2.0))
        c = Circuit("undamped")
        c.add(VoltageSource("vd", "d", "0", dc(1.2)))
        c.add(VoltageSource("vg", "g", "0", dc(1.2)))
        c.add(MosfetElement("m1", "d", "g", "mid", m))
        c.add(MosfetElement("m2", "mid", "g", "0", m))
        findings = [d for d in check_circuit(c) if d.rule == "M206"]
        assert len(findings) == 1
        assert "'mid'" in findings[0].message

    def test_capacitor_damps_m206(self):
        from repro.spice import MosfetElement
        from repro.tech.node import Polarity, VtFlavor
        from repro.tech.transistor import Mosfet
        from repro.units import fF

        node = TechnologyNode.logic_90nm()
        m = Mosfet(node, Polarity.NMOS, VtFlavor.SVT,
                   width=node.width_units(2.0))
        c = Circuit("damped")
        c.add(VoltageSource("vd", "d", "0", dc(1.2)))
        c.add(VoltageSource("vg", "g", "0", dc(1.2)))
        c.add(MosfetElement("m1", "d", "g", "mid", m))
        c.add(MosfetElement("m2", "mid", "g", "0", m))
        c.add(Capacitor("c1", "mid", "0", 1 * fF))
        assert "M206" not in rules_of(check_circuit(c))

    def test_good_divider_is_clean(self):
        c = Circuit("divider")
        c.add(VoltageSource("v1", "in", "0", dc(1.0)))
        c.add(Resistor("r1", "in", "mid", 1e3))
        c.add(Resistor("r2", "mid", "0", 1e3))
        assert check_circuit(c) == []


class TestScopeRules:
    def test_m207_unused_port_warns(self):
        c = Circuit("sub")
        c.add(VoltageSource("v1", "vin", "0", dc(1.0)))
        scope = Scope(c, "x1", {"in": "vin", "enable": "en"})
        scope.add(Resistor(scope.name("r1"), scope.node("in"), "0", 1e3))
        findings = [d for d in check_scope(scope) if d.rule == "M207"]
        assert any("'enable'" in d.message for d in findings)

    def test_m207_port_to_missing_node_is_error(self):
        c = Circuit("sub")
        c.add(VoltageSource("v1", "vin", "0", dc(1.0)))
        # Port "out" targets a node no element ever connects.
        scope = Scope(c, "x1", {"in": "vin", "out": "vout"})
        scope.add(Resistor(scope.name("r1"), scope.node("in"), "0", 1e3))
        errors = [d for d in check_scope(scope)
                  if d.rule == "M207" and d.severity.value == "error"]
        assert len(errors) == 1
        assert "'vout'" in errors[0].message

    def test_fully_wired_scope_is_clean(self):
        c = Circuit("sub")
        c.add(VoltageSource("v1", "vin", "0", dc(1.0)))
        scope = Scope(c, "x1", {"in": "vin"})
        scope.add(Resistor(scope.name("r1"), scope.node("in"), "0", 1e3))
        assert check_scope(scope) == []


class TestConfigRules:
    def test_m208_non_power_of_two_geometry(self):
        macro = FastDramDesign(cells_per_lbl=24).build(96 * kb)
        rules = rules_of(check_organization(macro.organization))
        assert "M208" in rules

    def test_m208_negative_retention_override(self):
        macro = FastDramDesign().build(128 * kb)
        bad = dataclasses.replace(macro, retention_override=-1 * ms)
        errors = [d for d in check_macro(bad)
                  if d.rule == "M208" and d.severity.value == "error"]
        assert len(errors) == 1

    def test_m208_wordline_overdrive_forbidden(self):
        macro = FastDramDesign().build(128 * kb)
        org = macro.organization
        node = dataclasses.replace(org.node, allows_wordline_overdrive=False)
        bad = dataclasses.replace(org, node=node)
        assert org.cell.wordline_voltage > node.vdd  # boosted WL
        errors = [d for d in check_organization(bad)
                  if d.severity.value == "error"]
        assert errors and all(d.rule == "M208" for d in errors)

    def test_m209_saturated_refresh_policy(self):
        policy = LocalizedRefresh(n_blocks=128, rows_per_block=32,
                                  refresh_period_cycles=16)
        (finding,) = check_refresh_policy(policy)
        assert finding.rule == "M209"
        assert finding.severity.value == "error"

    def test_healthy_refresh_policy_is_clean(self):
        policy = LocalizedRefresh(n_blocks=128, rows_per_block=32,
                                  refresh_period_cycles=500_000)
        assert check_refresh_policy(policy) == []

    def test_m210_vth_above_vdd(self):
        node = TechnologyNode.logic_90nm()
        scaled = dataclasses.replace(node, vdd=0.41)
        rules = rules_of(check_tech_node(scaled))
        assert "M210" in rules

    def test_stock_nodes_are_clean(self):
        assert check_tech_node(TechnologyNode.logic_90nm()) == []
        assert check_tech_node(TechnologyNode.dram_90nm()) == []


class TestDispatchAndDiscovery:
    def test_unknown_object_yields_nothing(self):
        assert check_object(object()) == []

    def test_m211_broken_file(self, tmp_path):
        bad = tmp_path / "boom.py"
        bad.write_text("raise RuntimeError('import-time explosion')\n")
        (finding,) = check_python_file(bad)
        assert finding.rule == "M211"
        assert "import-time explosion" in finding.message

    def test_hook_targets_are_checked(self, tmp_path):
        target = tmp_path / "models.py"
        target.write_text(textwrap.dedent("""\
            from repro.spice import Circuit

            def repro_check_targets():
                return [Circuit("hooked-empty")]
            """))
        findings = check_python_file(target)
        assert rules_of(findings) == ["M201"]
        assert "hooked-empty" in findings[0].message

    def test_module_level_instances_discovered(self, tmp_path):
        target = tmp_path / "models.py"
        target.write_text(textwrap.dedent("""\
            from repro.spice import Circuit

            EMPTY = Circuit("module-level-empty")
            """))
        assert rules_of(check_python_file(target)) == ["M201"]

    def test_check_targets_deduplicates(self, tmp_path):
        target = tmp_path / "models.py"
        target.write_text(textwrap.dedent("""\
            from repro.spice import Circuit

            EMPTY = Circuit("dup-empty")

            def repro_check_targets():
                return [Circuit("dup-empty")]
            """))
        findings = check_targets([target], include_defaults=False)
        assert rules_of(findings) == ["M201"]

    def test_builtin_registry_has_no_errors(self):
        findings = check_targets(include_defaults=True)
        assert [d for d in findings if d.severity.value == "error"] == []


class TestRuleCatalogue:
    def test_every_rule_has_a_description(self):
        assert set(MODEL_RULES) == {f"M2{i:02d}" for i in range(1, 13)}
