"""The unified rule-ID registry: one namespace across lint (L1xx),
check (M2xx) and audit (D3xx), with collisions rejected at import."""

import pytest

from repro.analysis.diagnostics import all_rules, register_rules
from repro.analysis.lint import LINT_RULES
from repro.analysis.model import MODEL_RULES
from repro.analysis.purity import AUDIT_RULES


class TestRegistry:
    def test_all_three_families_registered(self):
        merged = all_rules()
        assert set(LINT_RULES) <= set(merged)
        assert set(MODEL_RULES) <= set(merged)
        assert set(AUDIT_RULES) <= set(merged)

    def test_no_id_claimed_twice(self):
        assert len(all_rules()) == (
            len(LINT_RULES) + len(MODEL_RULES) + len(AUDIT_RULES))

    def test_families_use_disjoint_prefixes(self):
        assert all(rule.startswith("L1") for rule in LINT_RULES)
        assert all(rule.startswith("M2") for rule in MODEL_RULES)
        assert all(rule.startswith("D3") for rule in AUDIT_RULES)

    def test_reregistering_identical_rules_is_idempotent(self):
        # Module reloads (pytest importmode quirks, REPL reloads) must
        # not explode — the same family re-declaring the same summary
        # is a no-op.
        assert register_rules("lint", dict(LINT_RULES)) == LINT_RULES

    def test_conflicting_registration_is_rejected(self):
        taken = next(iter(LINT_RULES))
        with pytest.raises(ValueError, match=taken):
            register_rules("rogue", {taken: "a different meaning"})

    def test_all_rules_is_sorted(self):
        merged = list(all_rules())
        assert merged == sorted(merged)
