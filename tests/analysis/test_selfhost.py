"""Self-hosting: the repository's own sources and models must satisfy
the analyzers — the same gate CI runs."""

import pathlib

from repro.analysis import (Severity, audit_paths, check_targets,
                            lint_paths)

REPO = pathlib.Path(__file__).resolve().parents[2]
SRC = REPO / "src" / "repro"
EXAMPLES = REPO / "examples"


class TestSelfHosting:
    def test_src_repro_is_lint_clean(self):
        findings = lint_paths([SRC])
        assert findings == [], "\n".join(
            f"{d.location()}: [{d.rule}] {d.message}" for d in findings)

    def test_src_repro_is_audit_clean(self):
        # The determinism audit gates the package with an *empty*
        # baseline: the executor's bit-identity contract is enforced,
        # not grandfathered.
        findings = audit_paths([SRC])
        assert findings == [], "\n".join(
            f"{d.location()}: [{d.rule}] {d.message}" for d in findings)

    def test_builtin_models_have_no_errors(self):
        errors = [d for d in check_targets()
                  if d.severity is Severity.ERROR]
        assert errors == [], "\n".join(d.message for d in errors)

    def test_examples_have_no_errors(self):
        errors = [d for d in check_targets([EXAMPLES])
                  if d.severity is Severity.ERROR]
        assert errors == [], "\n".join(d.message for d in errors)

    def test_examples_expose_check_hooks(self):
        hooked = [p for p in sorted(EXAMPLES.glob("*.py"))
                  if "repro_check_targets" in p.read_text()]
        assert len(hooked) >= 3
