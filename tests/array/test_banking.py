"""Tests for multi-bank composition."""

import pytest

from repro.array import BankedMemory, compare_banking_options
from repro.core import FastDramDesign
from repro.errors import ConfigurationError
from repro.units import Mb, kb


@pytest.fixture(scope="module")
def options():
    return compare_banking_options(FastDramDesign(), 2 * Mb,
                                   bank_counts=(1, 2, 4))


class TestComposition:
    def test_capacity_preserved(self, options):
        for memory in options.values():
            assert memory.total_bits == 2 * Mb

    def test_single_bank_is_the_macro(self, options):
        mono = options[1]
        assert mono.fabric_delay() == 0.0
        assert mono.fabric_energy() == 0.0
        assert mono.access_time() == pytest.approx(
            mono.bank.access_time())

    def test_banked_access_can_beat_monolithic(self, options):
        """Smaller banks are faster; the fabric must not eat the gain
        entirely at this size."""
        assert options[4].bank.access_time() < options[1].bank.access_time()

    def test_fabric_energy_grows_with_banks(self, options):
        assert options[4].fabric_energy() > options[2].fabric_energy() > 0

    def test_static_power_scales_with_banks(self, options):
        """Every bank leaks/refreshes regardless of selection, and N
        banks of size C/N cost about the same as one of size C."""
        assert options[2].static_power() == pytest.approx(
            options[1].static_power(), rel=0.05)

    def test_area_overhead_of_banking(self, options):
        assert options[4].area() > options[1].area()

    def test_summary_keys(self, options):
        summary = options[2].summary()
        assert summary["n_banks"] == 2.0
        assert summary["total_bits"] == float(2 * Mb)


class TestValidation:
    def test_power_of_two_enforced(self, options):
        with pytest.raises(ConfigurationError):
            BankedMemory(bank=options[1].bank, n_banks=3)

    def test_at_least_one_bank(self, options):
        with pytest.raises(ConfigurationError):
            BankedMemory(bank=options[1].bank, n_banks=0)

    def test_indivisible_counts_skipped(self):
        options = compare_banking_options(FastDramDesign(), 128 * kb,
                                          bank_counts=(1, 2, 4))
        assert set(options) == {1, 2, 4}

    def test_no_option_raises(self):
        with pytest.raises(ConfigurationError):
            compare_banking_options(FastDramDesign(), 2 * Mb,
                                    bank_counts=())
