"""Tests for the logical-effort decoder model."""

import pytest

from repro.array import DecoderModel
from repro.errors import ConfigurationError
from repro.units import fF, ns, pJ


class TestDelay:
    def test_subnanosecond_for_memory_decoders(self, logic_node):
        decoder = DecoderModel(logic_node, n_address_bits=12,
                               load_cap=100 * fF)
        assert 0 < decoder.delay() < 1 * ns

    def test_more_bits_slower(self, logic_node):
        small = DecoderModel(logic_node, n_address_bits=6, load_cap=50 * fF)
        large = DecoderModel(logic_node, n_address_bits=16, load_cap=50 * fF)
        assert large.delay() > small.delay()

    def test_heavier_load_slower(self, logic_node):
        light = DecoderModel(logic_node, n_address_bits=10, load_cap=20 * fF)
        heavy = DecoderModel(logic_node, n_address_bits=10, load_cap=500 * fF)
        assert heavy.delay() > light.delay()

    def test_stage_count_grows_with_effort(self, logic_node):
        small = DecoderModel(logic_node, n_address_bits=4, load_cap=10 * fF)
        large = DecoderModel(logic_node, n_address_bits=16,
                             load_cap=1000 * fF)
        assert large.stage_count() > small.stage_count()

    def test_at_least_two_stages(self, logic_node):
        tiny = DecoderModel(logic_node, n_address_bits=1, load_cap=1 * fF)
        assert tiny.stage_count() >= 2

    def test_fo1_delay_band(self, logic_node):
        decoder = DecoderModel(logic_node, n_address_bits=8, load_cap=50 * fF)
        assert 1e-12 < decoder.fo1_delay < 20e-12


class TestEnergy:
    def test_energy_scales_with_load(self, logic_node):
        light = DecoderModel(logic_node, n_address_bits=10, load_cap=20 * fF)
        heavy = DecoderModel(logic_node, n_address_bits=10, load_cap=200 * fF)
        assert heavy.energy() > light.energy()

    def test_energy_subpicojoule_band(self, logic_node):
        decoder = DecoderModel(logic_node, n_address_bits=12,
                               load_cap=100 * fF)
        assert 0.05 * pJ < decoder.energy() < 2 * pJ

    def test_custom_activity_cap(self, logic_node):
        explicit = DecoderModel(logic_node, n_address_bits=10,
                                load_cap=100 * fF, activity_cap=0.0)
        default = DecoderModel(logic_node, n_address_bits=10,
                               load_cap=100 * fF)
        assert explicit.energy() < default.energy()

    def test_energy_quadratic_in_voltage(self, logic_node):
        decoder = DecoderModel(logic_node, n_address_bits=10,
                               load_cap=100 * fF)
        assert decoder.energy(1.2) == pytest.approx(
            4 * decoder.energy(0.6))


class TestValidation:
    def test_rejects_zero_bits(self, logic_node):
        with pytest.raises(ConfigurationError):
            DecoderModel(logic_node, n_address_bits=0, load_cap=1 * fF)

    def test_rejects_zero_load(self, logic_node):
        with pytest.raises(ConfigurationError):
            DecoderModel(logic_node, n_address_bits=4, load_cap=0.0)
