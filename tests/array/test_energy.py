"""Tests for the per-access energy model (paper Fig. 7b / Fig. 8)."""

import pytest

from repro.units import pJ


class TestBreakdown:
    def test_total_is_sum(self, dram_macro_128kb):
        access = dram_macro_128kb.read_energy()
        assert access.total == pytest.approx(sum(access.breakdown().values()))

    def test_all_components_positive(self, dram_macro_128kb):
        for name, value in dram_macro_128kb.read_energy().breakdown().items():
            assert value > 0, name

    def test_per_bit_headline(self, dram_macro_128kb):
        """Paper abstract: 'dynamic energy of less than 0.2 pJ per bit'."""
        assert dram_macro_128kb.energy_per_bit(write=False) < 0.2 * pJ
        assert dram_macro_128kb.energy_per_bit(write=True) < 0.2 * pJ

    def test_per_bit_rejects_zero_word(self, dram_macro_128kb):
        from repro.errors import ConfigurationError
        with pytest.raises(ConfigurationError):
            dram_macro_128kb.read_energy().per_bit(0)


class TestFig8Anchors:
    """The Fig. 8 bars, asserted as +-50 % bands around the paper values."""

    def test_read_decoder(self, dram_macro_128kb):
        assert 0.5 * pJ < dram_macro_128kb.read_energy().decode < 1.5 * pJ

    def test_read_cell(self, dram_macro_128kb):
        assert 0.25 * pJ < dram_macro_128kb.read_energy().cell < 0.75 * pJ

    def test_read_localblock(self, dram_macro_128kb):
        assert 0.55 * pJ < dram_macro_128kb.read_energy().localblock < 1.65 * pJ

    def test_read_global_sa(self, dram_macro_128kb):
        assert 0.28 * pJ < dram_macro_128kb.read_energy().global_path < 0.84 * pJ

    def test_write_decoder_exceeds_read(self, dram_macro_128kb):
        """Fig. 8: write 'decoder' bar (1.6 pJ) above the read bar
        (1.0 pJ) — the write datapath is folded in."""
        read = dram_macro_128kb.read_energy().decode
        write = dram_macro_128kb.write_energy().decode
        assert 1.3 < write / read < 3.0

    def test_write_cell_exceeds_read(self, dram_macro_128kb):
        """Fig. 8: 0.62 pJ vs 0.5 pJ."""
        read = dram_macro_128kb.read_energy().cell
        write = dram_macro_128kb.write_energy().cell
        assert 1.05 < write / read < 1.5


class TestArchitecturalClaims:
    def test_read_similar_to_sram(self, dram_macro_128kb, sram_macro_128kb):
        """Paper Sec. IV: 'a similar read active power for the two
        matrices'."""
        ratio = (dram_macro_128kb.read_energy().total
                 / sram_macro_128kb.read_energy().total)
        assert 0.7 < ratio < 1.4

    def test_write_wins_at_2mb(self, dram_macro_2mb, sram_macro_2mb):
        """Paper Sec. IV: 'a significant improvement for the write energy
        of a large matrix'."""
        ratio = (sram_macro_2mb.write_energy().total
                 / dram_macro_2mb.write_energy().total)
        assert ratio > 1.5

    def test_dram_cell_energy_higher_than_sram(self, dram_macro_128kb,
                                               sram_macro_128kb):
        """The DRAM pays the 1.7 V word line + restore; the SRAM cell
        bar is just its 1.2 V word line."""
        assert (dram_macro_128kb.read_energy().cell
                > 3 * sram_macro_128kb.read_energy().cell)

    def test_low_swing_gbl_cheap(self, dram_macro_128kb):
        """The GBL contribution must be far below a full-swing bus."""
        org = dram_macro_128kb.organization
        full_swing = (org.word_bits * org.gbl_capacitance()
                      * org.node.vdd ** 2)
        global_path = dram_macro_128kb.read_energy().global_path
        assert global_path < full_swing

    def test_doubling_cells_per_lbl_marginal(self):
        """Paper Sec. IV: 'doubling the number of cells per LBL has a
        marginal impact on the power consumption'."""
        from repro.core import FastDramDesign
        from repro.units import kb
        e16 = FastDramDesign(cells_per_lbl=16).build(
            128 * kb, retention_override=1e-3).read_energy().total
        e32 = FastDramDesign(cells_per_lbl=32).build(
            128 * kb, retention_override=1e-3).read_energy().total
        assert abs(e32 - e16) / e16 < 0.15


class TestSizeScaling:
    def test_energy_grows_with_size(self, dram_macro_128kb, dram_macro_2mb):
        assert (dram_macro_2mb.read_energy().total
                > dram_macro_128kb.read_energy().total)

    def test_localblock_energy_size_independent(self, dram_macro_128kb,
                                                dram_macro_2mb):
        """Only one local block fires regardless of matrix size."""
        small = dram_macro_128kb.read_energy().localblock
        big = dram_macro_2mb.read_energy().localblock
        assert big == pytest.approx(small, rel=0.01)


class TestRefreshEnergy:
    def test_refresh_cheaper_than_read(self, dram_macro_128kb):
        """The localized refresh skips decode, GBL, global SA and IO."""
        refresh = dram_macro_128kb.energy_model.refresh_row_energy()
        read = dram_macro_128kb.read_energy().total
        assert refresh < 0.7 * read

    def test_refresh_is_cell_plus_localblock(self, dram_macro_128kb):
        model = dram_macro_128kb.energy_model
        expected = (model.cell_energy(write=False)
                    + model.localblock_energy(write=False))
        assert model.refresh_row_energy() == pytest.approx(expected)

    def test_sram_has_no_refresh(self, sram_macro_128kb):
        assert sram_macro_128kb.energy_model.refresh_row_energy() == 0.0
