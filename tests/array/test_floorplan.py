"""Tests for the area model (paper Fig. 7d / Table I)."""

import pytest

from repro.units import mm2


class TestBreakdown:
    def test_total_is_sum(self, dram_macro_128kb):
        breakdown = dram_macro_128kb.floorplan.breakdown()
        assert breakdown.total == pytest.approx(
            sum(breakdown.breakdown().values()))

    def test_array_efficiency_band(self, dram_macro_128kb):
        eff = dram_macro_128kb.floorplan.breakdown().array_efficiency
        assert 0.3 < eff < 0.8

    def test_cells_dominate_at_2mb(self, dram_macro_2mb):
        """Peripheral overhead amortises with size."""
        big = dram_macro_2mb.floorplan.breakdown().array_efficiency
        assert big > 0.55

    def test_describe_mentions_area(self, dram_macro_128kb):
        assert "mm^2" in dram_macro_128kb.floorplan.describe()


class TestTableI:
    def test_dram_smaller_at_both_sizes(self, dram_macro_128kb,
                                        sram_macro_128kb, dram_macro_2mb,
                                        sram_macro_2mb):
        assert dram_macro_128kb.area() < sram_macro_128kb.area()
        assert dram_macro_2mb.area() < sram_macro_2mb.area()

    def test_factor_at_2mb(self, dram_macro_2mb, sram_macro_2mb):
        """Paper: 'the total area is reduced by a factor of 2.x' — we
        accept 2.2x-3.5x."""
        ratio = sram_macro_2mb.area() / dram_macro_2mb.area()
        assert 2.2 < ratio < 3.5

    def test_factor_at_128kb(self, dram_macro_128kb, sram_macro_128kb):
        ratio = sram_macro_128kb.area() / dram_macro_128kb.area()
        assert 2.0 < ratio < 3.5

    def test_absolute_magnitudes(self, dram_macro_128kb, sram_macro_2mb):
        """A 128 kb 90 nm macro is a fraction of a mm^2; a 2 Mb SRAM a
        few mm^2."""
        assert 0.02 * mm2 < dram_macro_128kb.area() < 0.3 * mm2
        assert 1.0 * mm2 < sram_macro_2mb.area() < 6.0 * mm2

    def test_gain_bounded_by_cell_ratio(self, dram_macro_2mb,
                                        sram_macro_2mb):
        """The area gain can approach but not exceed the raw cell-area
        ratio (1.0 / 0.3) by much — peripherals are shared."""
        cell_ratio = (sram_macro_2mb.organization.cell.area
                      / dram_macro_2mb.organization.cell.area)
        area_ratio = sram_macro_2mb.area() / dram_macro_2mb.area()
        assert area_ratio < 1.1 * cell_ratio


class TestScaling:
    def test_area_roughly_linear_in_bits(self, dram_macro_128kb,
                                         dram_macro_2mb):
        ratio = dram_macro_2mb.area() / dram_macro_128kb.area()
        assert 8.0 < ratio < 16.0  # sublinear: fixed overheads amortise
