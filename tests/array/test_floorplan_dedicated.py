"""Tests for the dedicated-DRAM-peripherals option (paper future work)."""

import dataclasses

import pytest

from repro.array import Floorplan


class TestDedicatedPeriphery:
    def test_shrinks_dram_macro(self, dram_macro_128kb):
        shared = dram_macro_128kb.floorplan
        dedicated = dataclasses.replace(shared, dedicated_periphery=True)
        assert dedicated.total_area() < shared.total_area()

    def test_cells_untouched(self, dram_macro_128kb):
        shared = dram_macro_128kb.floorplan.breakdown()
        dedicated = dataclasses.replace(
            dram_macro_128kb.floorplan, dedicated_periphery=True).breakdown()
        assert dedicated.cells == shared.cells
        assert dedicated.local_periphery < shared.local_periphery

    def test_noop_for_sram(self, sram_macro_128kb):
        """Dedicated *DRAM* peripherals do not apply to the SRAM."""
        shared = sram_macro_128kb.floorplan
        dedicated = dataclasses.replace(shared, dedicated_periphery=True)
        assert dedicated.total_area() == shared.total_area()

    def test_further_gain_claim(self, dram_macro_2mb, sram_macro_2mb):
        """Paper Sec. IV: 'Further gain should be possible by designing
        peripherals dedicated to a DRAM matrix' — the option must push
        the area factor beyond the shared-periphery value."""
        shared_gain = sram_macro_2mb.area() / dram_macro_2mb.area()
        dedicated = dataclasses.replace(dram_macro_2mb.floorplan,
                                        dedicated_periphery=True)
        dedicated_gain = sram_macro_2mb.area() / dedicated.total_area()
        assert dedicated_gain > shared_gain
        assert dedicated_gain / shared_gain > 1.05
