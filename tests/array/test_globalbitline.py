"""The hierarchical-bitline workload: topology, sensing, scaling."""

import numpy as np
import pytest

from repro.array import (build_globalbitline_read_circuit,
                         simulate_globalbitline_read)
from repro.cells.dram1t1c import Dram1t1cCell
from repro.errors import SimulationError
from repro.spice.elements import Switch
from repro.spice.mna import MnaSystem
from repro.spice.mosfet import MosfetElement


def cell():
    return Dram1t1cCell.scratchpad()


class TestBuildValidation:
    def test_bad_stored_value_rejected(self):
        with pytest.raises(SimulationError):
            build_globalbitline_read_circuit(cell(), stored_value=2)

    def test_bad_idle_value_rejected(self):
        with pytest.raises(SimulationError):
            build_globalbitline_read_circuit(cell(), idle_value=-1)

    def test_too_few_blocks_rejected(self):
        with pytest.raises(SimulationError):
            build_globalbitline_read_circuit(cell(), blocks=1)

    def test_too_few_cells_rejected(self):
        with pytest.raises(SimulationError):
            build_globalbitline_read_circuit(cell(), cells_per_lbl=1)

    def test_selected_block_out_of_range_rejected(self):
        with pytest.raises(SimulationError):
            build_globalbitline_read_circuit(cell(), blocks=4,
                                             selected_block=4)


class TestTopology:
    def test_unknown_count_scales_with_both_axes(self):
        """size = blocks * (cells + 1) + fixed global overhead."""
        sizes = {}
        for blocks, cells in ((2, 2), (4, 2), (2, 4)):
            circuit = build_globalbitline_read_circuit(
                cell(), blocks=blocks, cells_per_lbl=cells)
            sizes[(blocks, cells)] = MnaSystem(circuit).size
        overhead = sizes[(2, 2)] - 2 * 3
        assert sizes[(4, 2)] == 4 * 3 + overhead
        assert sizes[(2, 4)] == 2 * 5 + overhead

    def test_one_select_switch_per_block_single_one_armed(self):
        circuit = build_globalbitline_read_circuit(cell(), blocks=4,
                                                   cells_per_lbl=2,
                                                   selected_block=2)
        selects = [el for el in circuit.elements
                   if isinstance(el, Switch)
                   and el.name.startswith("sw_sel")]
        assert len(selects) == 4
        armed = [s for s in selects if s.ctrl_p == "sel_en"]
        assert [s.name for s in armed] == ["sw_sel2"]

    def test_one_access_device_per_cell_single_one_on_wl(self):
        circuit = build_globalbitline_read_circuit(cell(), blocks=3,
                                                   cells_per_lbl=4)
        access = [el for el in circuit.elements
                  if isinstance(el, MosfetElement)
                  and el.name.startswith("m_acc")]
        assert len(access) == 3 * 4
        on_wl = [m for m in access if m.gate == "wl"]
        assert [m.name for m in on_wl] == ["m_acc0_0"]


class TestRead:
    def test_read_of_one_regenerates_high(self):
        wf = simulate_globalbitline_read(cell(), blocks=4, cells_per_lbl=4,
                                         stored_value=1)
        assert wf.charge_sharing_signal > 0.05
        assert wf.gbl_final > 0.8

    def test_read_of_zero_regenerates_low(self):
        wf = simulate_globalbitline_read(cell(), blocks=4, cells_per_lbl=4,
                                         stored_value=0)
        assert wf.charge_sharing_signal > 0.05
        assert wf.gbl_final < 0.2

    def test_idle_blocks_stay_near_precharge(self):
        wf = simulate_globalbitline_read(cell(), blocks=4, cells_per_lbl=4)
        assert wf.idle_lbl_drift < 0.05

    def test_nondefault_selected_block_reads_too(self):
        wf = simulate_globalbitline_read(cell(), blocks=4, cells_per_lbl=4,
                                         stored_value=1, selected_block=3)
        assert wf.gbl_final > 0.8
