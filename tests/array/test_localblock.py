"""Circuit-level local-block tests (paper Fig. 3 / Fig. 4 waveforms).

These run the MNA transient engine on the full local-block netlist:
slow but decisive — they validate that the architecture's mechanism
(charge share -> latch -> local restore -> low-swing GBL) actually works
at transistor level, which is the paper's methodology step 1.
"""

import pytest

from repro.array import build_localblock_read_circuit, simulate_localblock_read
from repro.errors import SimulationError


@pytest.fixture(scope="module")
def read0(scratchpad_cell):
    return simulate_localblock_read(scratchpad_cell, stored_value=0)


@pytest.fixture(scope="module")
def read1(scratchpad_cell):
    return simulate_localblock_read(scratchpad_cell, stored_value=1)


@pytest.fixture(scope="module")
def refresh0(scratchpad_cell):
    return simulate_localblock_read(scratchpad_cell, stored_value=0,
                                    refresh_only=True)


class TestReadZero:
    def test_signal_develops(self, read0):
        """A stored '0' pulls the LBL below the dummy reference."""
        assert read0.charge_sharing_signal > 0.05

    def test_lbl_regenerates_to_zero(self, read0):
        """Paper Fig. 3: LBL 1 V -> 0 V on a read '0'."""
        assert read0.lbl_final < 0.1

    def test_cell_restored(self, read0):
        """Write-after-read: the cell ends back at '0'."""
        assert read0.restored_correctly
        assert read0.cell_final < 0.15

    def test_gbl_low_swing(self, read0):
        """Paper Fig. 3: GBL 0.4 V -> 0.3 V, i.e. a ~100 mV swing."""
        assert 0.05 < read0.gbl_swing < 0.15


class TestReadOne:
    def test_lbl_stays_high(self, read1):
        """Paper Fig. 3: reading a '1' leaves the LBL at the precharge."""
        assert read1.lbl_final > 0.9

    def test_cell_restored_high(self, read1):
        assert read1.restored_correctly
        assert read1.cell_final > 0.6

    def test_gbl_untouched(self, read1):
        assert read1.gbl_swing < 0.02


class TestRefresh:
    def test_refresh_restores_without_gbl(self, refresh0):
        """The paper's localized refresh: data restored locally, the GBL
        side never moves."""
        assert refresh0.restored_correctly
        assert refresh0.gbl_swing < 0.01

    def test_refresh_spends_wordline_energy(self, refresh0):
        assert refresh0.wordline_energy > 0


class TestDramTechnologyCell(object):
    def test_trench_cell_reads_correctly(self, trench_cell):
        wave = simulate_localblock_read(trench_cell, cells_per_lbl=32,
                                        stored_value=0)
        assert wave.restored_correctly
        assert wave.charge_sharing_signal > 0.1

    def test_bigger_cap_bigger_lbl_excursion(self, scratchpad_cell,
                                             trench_cell):
        """The 30 fF trench pulls the LBL further down than the 11 fF
        gate cap.  (The *differential* vs the half-capacitance dummy is
        deliberately not compared: it peaks at C_cell ~ C_LBL and
        shrinks again for very large cells.)"""
        def lbl_drop(wave):
            lbl = wave.result.voltage("lbl")
            idx = len(lbl) // 4  # after charge sharing, before SA enable
            return 1.0 - float(lbl[idx])

        sp = simulate_localblock_read(scratchpad_cell, cells_per_lbl=16,
                                      stored_value=0)
        tr = simulate_localblock_read(trench_cell, cells_per_lbl=16,
                                      stored_value=0)
        assert lbl_drop(tr) > lbl_drop(sp)


class TestNetlistConstruction:
    def test_rejects_bad_stored_value(self, scratchpad_cell):
        with pytest.raises(SimulationError):
            build_localblock_read_circuit(scratchpad_cell, stored_value=2)

    def test_rejects_single_cell(self, scratchpad_cell):
        with pytest.raises(SimulationError):
            build_localblock_read_circuit(scratchpad_cell, cells_per_lbl=1)

    def test_refresh_circuit_has_no_buffer(self, scratchpad_cell):
        from repro.errors import NetlistError
        circuit = build_localblock_read_circuit(scratchpad_cell,
                                                refresh_only=True)
        with pytest.raises(NetlistError):
            circuit.element("m_rb_in")

    def test_read_circuit_validates(self, scratchpad_cell):
        build_localblock_read_circuit(scratchpad_cell).validate()
