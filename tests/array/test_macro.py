"""Tests for the assembled macro design."""

import pytest


class TestSummary:
    def test_summary_keys(self, dram_macro_128kb):
        summary = dram_macro_128kb.summary()
        for key in ("access_time_s", "read_energy_j", "write_energy_j",
                    "area_m2", "static_power_w", "read_energy_per_bit_j"):
            assert key in summary
            assert summary[key] > 0

    def test_summary_consistent_with_models(self, dram_macro_128kb):
        summary = dram_macro_128kb.summary()
        assert summary["access_time_s"] == pytest.approx(
            dram_macro_128kb.access_time())
        assert summary["read_energy_j"] == pytest.approx(
            dram_macro_128kb.read_energy().total)

    def test_describe_mentions_mechanism(self, dram_macro_128kb,
                                         sram_macro_128kb):
        assert "refresh" in dram_macro_128kb.describe()
        assert "leakage" in sram_macro_128kb.describe()

    def test_describe_reports_retention(self, dram_macro_128kb):
        assert "retention used" in dram_macro_128kb.describe()

    def test_per_bit_consistency(self, dram_macro_128kb):
        per_bit = dram_macro_128kb.energy_per_bit()
        word = dram_macro_128kb.organization.word_bits
        assert per_bit * word == pytest.approx(
            dram_macro_128kb.read_energy().total)


class TestModelFactories:
    def test_models_share_organization(self, dram_macro_128kb):
        macro = dram_macro_128kb
        assert macro.timing_model.organization is macro.organization
        assert macro.energy_model.organization is macro.organization
        assert macro.floorplan.organization is macro.organization

    def test_retention_override_respected(self, dram_macro_128kb):
        from tests.conftest import RETENTION_FOR_TESTS
        model = dram_macro_128kb.static_power_model
        assert model.resolved_retention() == RETENTION_FOR_TESTS
