"""Tests for the sensing-aware read-margin analysis."""

import pytest

from repro.array import ReadMarginAnalysis
from repro.errors import ConfigurationError


@pytest.fixture(scope="module")
def analysis(dram_macro_128kb):
    return ReadMarginAnalysis(
        organization=dram_macro_128kb.organization,
        local_sa=dram_macro_128kb.local_sa,
        retention=dram_macro_128kb.cell_design.retention_model(),
        samples=2000,
    )


class TestMarginDecay:
    def test_fresh_read_has_margin(self, analysis):
        point = analysis.evaluate(1e-6)
        assert point.mean_margin > 0.1
        assert point.failure_fraction == 0.0

    def test_margin_decays_with_interval(self, analysis):
        points = analysis.sweep((1e-4, 1e-3, 1e-2, 1e-1))
        means = [p.mean_margin for p in points]
        assert means == sorted(means, reverse=True)

    def test_failures_grow_with_interval(self, analysis):
        points = analysis.sweep((1e-3, 3e-2, 3e-1))
        failures = [p.failure_fraction for p in points]
        assert failures == sorted(failures)
        assert failures[-1] > 0.1

    def test_worst_below_mean(self, analysis):
        point = analysis.evaluate(5e-3)
        assert point.worst_margin < point.mean_margin


class TestYieldInterval:
    def test_bisection_finds_threshold(self, analysis):
        interval = analysis.max_interval_at_yield(target_failure=1e-3)
        at = analysis.evaluate(interval).failure_fraction
        beyond = analysis.evaluate(interval * 2).failure_fraction
        assert at <= 1e-3
        assert beyond > at

    def test_sensing_criterion_less_conservative(self, analysis,
                                                 dram_macro_128kb):
        """The paper's per-cell retention criterion (worst cell loses its
        margin) is stricter than the sensing criterion at a realistic
        yield target — quantifying the paper's own 'very conservative'
        remark."""
        sensing = analysis.max_interval_at_yield(target_failure=1e-3)
        cell_worst = dram_macro_128kb.retention_statistics(
            count=800).worst_case
        assert sensing > 2 * cell_worst

    def test_stricter_yield_shorter_interval(self, analysis):
        loose = analysis.max_interval_at_yield(target_failure=1e-2)
        tight = analysis.max_interval_at_yield(target_failure=1e-4)
        assert tight < loose

    def test_target_validated(self, analysis):
        with pytest.raises(ConfigurationError):
            analysis.max_interval_at_yield(target_failure=1.5)


class TestValidation:
    def test_static_cell_rejected(self, sram_macro_128kb,
                                  dram_macro_128kb):
        with pytest.raises(ConfigurationError):
            ReadMarginAnalysis(
                organization=sram_macro_128kb.organization,
                local_sa=sram_macro_128kb.local_sa,
                retention=dram_macro_128kb.cell_design.retention_model(),
            )

    def test_interval_validated(self, analysis):
        with pytest.raises(ConfigurationError):
            analysis.evaluate(0.0)

    def test_sample_floor(self, dram_macro_128kb):
        with pytest.raises(ConfigurationError):
            ReadMarginAnalysis(
                organization=dram_macro_128kb.organization,
                local_sa=dram_macro_128kb.local_sa,
                retention=dram_macro_128kb.cell_design.retention_model(),
                samples=10,
            )
