"""Tests for the hierarchical array organization."""

import dataclasses

import pytest

from repro.array import ArrayOrganization
from repro.errors import ConfigurationError
from repro.units import kb, Mb


@pytest.fixture(scope="module")
def dram_org(dram_node, trench_cell):
    return ArrayOrganization(node=dram_node, cell=trench_cell.spec(),
                             total_bits=128 * kb, cells_per_lbl=32,
                             cell_aspect_ratio=1.0)


@pytest.fixture(scope="module")
def sram_org(logic_node, sram_cell):
    return ArrayOrganization(node=logic_node, cell=sram_cell.spec(),
                             total_bits=128 * kb, cells_per_lbl=16,
                             cell_aspect_ratio=2.0)


class TestLogicalStructure:
    def test_paper_block_count(self, dram_org):
        """128 kb at 32 cells/LBL and 32-bit words = 128 local blocks —
        the 'mono vs 128 localblocks' of paper Fig. 5."""
        assert dram_org.n_localblocks == 128

    def test_one_lwl_per_word(self, dram_org):
        assert dram_org.n_words == 4096
        assert dram_org.bits_per_localblock == 32 * 32

    def test_blocks_arranged_exactly(self, dram_org):
        assert (dram_org.n_block_rows * dram_org.n_block_columns
                == dram_org.n_localblocks)

    def test_indivisible_capacity_rejected(self, dram_node, trench_cell):
        with pytest.raises(ConfigurationError):
            ArrayOrganization(node=dram_node, cell=trench_cell.spec(),
                              total_bits=100000, cells_per_lbl=32)

    def test_bad_block_columns_rejected(self, dram_org):
        with pytest.raises(ConfigurationError):
            dataclasses.replace(dram_org, block_columns=7)


class TestGeometry:
    def test_cell_dims_consistent(self, dram_org):
        assert (dram_org.cell_width * dram_org.cell_height
                == pytest.approx(dram_org.cell.area))

    def test_near_square_floorplan(self, dram_org):
        ratio = dram_org.matrix_width / dram_org.matrix_height
        assert 0.3 < ratio < 3.0

    def test_block_height_includes_sa_strip(self, dram_org):
        cells_only = dram_org.cells_per_lbl * dram_org.cell_height
        assert dram_org.block_height > cells_only

    def test_dynamic_strip_taller_than_static(self, dram_org, sram_org):
        """Paper Fig. 4: the DRAM local block carries the write-after-read
        loop on top of the SRAM local SA."""
        assert (dram_org.local_sa_strip_height
                > sram_org.local_sa_strip_height)

    def test_dram_matrix_denser(self, dram_org, sram_org):
        dram_area = dram_org.matrix_width * dram_org.matrix_height
        sram_area = sram_org.matrix_width * sram_org.matrix_height
        assert dram_area < 0.6 * sram_area


class TestElectricalLoads:
    def test_lbl_cap_small(self, dram_org):
        """The very short LBL: ~10 fF for 32 cells."""
        assert 3e-15 < dram_org.lbl_capacitance() < 30e-15

    def test_lbl_cap_grows_with_cells(self, dram_org):
        longer = dataclasses.replace(dram_org, cells_per_lbl=64,
                                     block_columns=None)
        assert longer.lbl_capacitance() > dram_org.lbl_capacitance()

    def test_gbl_longer_than_lbl(self, dram_org):
        assert (dram_org.global_bitline().length
                > 5 * dram_org.local_bitline().length)

    def test_read_signal_large_for_short_lbl(self, dram_org):
        """30 fF cell vs ~10 fF LBL: most of the precharge appears."""
        assert dram_org.read_signal() > 0.5

    def test_sram_read_signal_fixed(self, sram_org):
        assert sram_org.read_signal() == pytest.approx(0.15)


class TestScaling:
    def test_2mb_geometry_grows(self, dram_org):
        big = dataclasses.replace(dram_org, total_bits=2 * Mb,
                                  block_columns=None)
        assert big.n_localblocks == 16 * dram_org.n_localblocks
        assert (big.matrix_width * big.matrix_height
                > 10 * dram_org.matrix_width * dram_org.matrix_height)

    def test_gbl_cap_grows_with_size(self, dram_org):
        big = dataclasses.replace(dram_org, total_bits=2 * Mb,
                                  block_columns=None)
        assert big.gbl_capacitance() > 2 * dram_org.gbl_capacitance()

    def test_lbl_cap_size_independent(self, dram_org):
        big = dataclasses.replace(dram_org, total_bits=2 * Mb,
                                  block_columns=None)
        assert big.lbl_capacitance() == pytest.approx(
            dram_org.lbl_capacitance())


class TestWithCell:
    def test_swap_cell(self, dram_org, sram_cell):
        swapped = dram_org.with_cell(sram_cell.spec(), cells_per_lbl=16)
        assert swapped.cell.name.startswith("sram6t")
        assert swapped.cells_per_lbl == 16
        assert swapped.total_bits == dram_org.total_bits

    def test_describe_mentions_blocks(self, dram_org):
        text = dram_org.describe()
        assert "128 localblocks" in text
