"""Tests for size scaling helpers."""

import pytest

from repro.array import scale_organization
from repro.array.scaling import global_wire_penalty, standard_sizes
from repro.errors import ConfigurationError
from repro.units import kb, Mb


class TestScaleOrganization:
    def test_keeps_cell_and_structure(self, dram_macro_128kb):
        org = dram_macro_128kb.organization
        big = scale_organization(org, 2 * Mb)
        assert big.total_bits == 2 * Mb
        assert big.cell == org.cell
        assert big.cells_per_lbl == org.cells_per_lbl

    def test_rejects_nonpositive(self, dram_macro_128kb):
        with pytest.raises(ConfigurationError):
            scale_organization(dram_macro_128kb.organization, 0)

    def test_standard_sizes_span_paper(self):
        sizes = standard_sizes()
        assert sizes[0] == 128 * kb
        assert sizes[-1] == 2 * Mb
        assert sizes == sorted(sizes)


class TestWirePenalty:
    def test_nonnegative(self, dram_macro_128kb):
        assert global_wire_penalty(dram_macro_128kb.organization) >= 0.0

    def test_grows_with_size(self, dram_macro_128kb, dram_macro_2mb):
        small = global_wire_penalty(dram_macro_128kb.organization)
        big = global_wire_penalty(dram_macro_2mb.organization)
        assert big >= small
