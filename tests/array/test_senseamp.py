"""Tests for the sense-amplifier model."""

import dataclasses

import pytest

from repro.array import SenseAmplifier
from repro.errors import ConfigurationError
from repro.units import fF, mV, ps


@pytest.fixture(scope="module")
def sa(logic_node):
    return SenseAmplifier(logic_node)


class TestOffset:
    def test_raw_offset_band(self, sa):
        """A ~0.5 um input pair at 90 nm: offset sigma in the tens of mV."""
        assert 5 * mV < sa.raw_offset_sigma() < 50 * mV

    def test_tuning_reduces_offset(self, sa):
        untuned = dataclasses.replace(sa, tunable=False)
        assert sa.effective_offset_sigma() < untuned.effective_offset_sigma()

    def test_required_signal_is_margin_sigma(self, sa):
        assert sa.required_input_signal() == pytest.approx(
            sa.margin_sigma * sa.effective_offset_sigma())

    def test_bigger_devices_less_offset(self, logic_node):
        small = SenseAmplifier(logic_node, input_units=2.0)
        large = SenseAmplifier(logic_node, input_units=8.0)
        assert large.raw_offset_sigma() < small.raw_offset_sigma()


class TestDynamics:
    def test_regeneration_tau_band(self, sa):
        assert 1 * ps < sa.regeneration_tau() < 100 * ps

    def test_sense_delay_logarithmic(self, sa):
        """Halving the input adds exactly tau*ln2."""
        d1 = sa.sense_delay(0.1)
        d2 = sa.sense_delay(0.05)
        import math
        assert d2 - d1 == pytest.approx(sa.regeneration_tau() * math.log(2),
                                        rel=1e-6)

    def test_large_input_zero_delay(self, sa):
        assert sa.sense_delay(1.0, output_level=0.5) == 0.0

    def test_rejects_nonpositive_input(self, sa):
        with pytest.raises(ConfigurationError):
            sa.sense_delay(0.0)

    def test_bigger_cap_slower(self, logic_node):
        fast = SenseAmplifier(logic_node, internal_cap=2 * fF)
        slow = SenseAmplifier(logic_node, internal_cap=16 * fF)
        assert slow.regeneration_tau() > fast.regeneration_tau()


class TestEnergy:
    def test_energy_cv2_scale(self, sa):
        base = sa.internal_cap * sa.supply ** 2
        assert sa.energy_per_operation() == pytest.approx(1.15 * base)

    def test_tuning_costs_energy(self, logic_node):
        tuned = SenseAmplifier(logic_node, tunable=True)
        plain = SenseAmplifier(logic_node, tunable=False)
        assert tuned.energy_per_operation() > plain.energy_per_operation()


class TestValidation:
    def test_rejects_bad_tuning_factor(self, logic_node):
        with pytest.raises(ConfigurationError):
            SenseAmplifier(logic_node, tuning_factor=0.0)

    def test_rejects_bad_margin(self, logic_node):
        with pytest.raises(ConfigurationError):
            SenseAmplifier(logic_node, margin_sigma=-1.0)
