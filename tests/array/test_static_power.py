"""Tests for the static-power comparison (paper Fig. 7c)."""

import dataclasses

import pytest

from repro.array.static_power import StaticPowerModel
from repro.errors import ConfigurationError


class TestMechanisms:
    def test_sram_mechanism_is_leakage(self, sram_macro_128kb):
        report = sram_macro_128kb.static_power()
        assert report.mechanism == "leakage"
        assert report.retention_time is None

    def test_dram_mechanism_is_refresh(self, dram_macro_128kb):
        report = dram_macro_128kb.static_power()
        assert report.mechanism == "refresh"
        assert report.retention_time is not None
        assert report.refresh_row_energy is not None

    def test_sram_power_is_cells_times_leak(self, sram_macro_128kb):
        org = sram_macro_128kb.organization
        expected = org.total_bits * org.cell.standby_leakage * org.node.vdd
        assert sram_macro_128kb.static_power().power == pytest.approx(expected)

    def test_dram_power_formula(self, dram_macro_128kb):
        model = dram_macro_128kb.static_power_model
        report = dram_macro_128kb.static_power()
        org = dram_macro_128kb.organization
        expected = (org.n_words * model.energy_model.refresh_row_energy()
                    / model.refresh_period())
        assert report.power == pytest.approx(expected)


class TestRefreshGuard:
    def test_guard_halves_period(self, dram_macro_128kb):
        model = dram_macro_128kb.static_power_model
        assert model.refresh_period() == pytest.approx(
            model.resolved_retention() / model.refresh_guard)

    def test_guard_validated(self, dram_macro_128kb):
        model = dataclasses.replace(dram_macro_128kb.static_power_model,
                                    refresh_guard=0.5)
        with pytest.raises(ConfigurationError):
            model.refresh_period()

    def test_longer_retention_less_power(self, dram_macro_128kb):
        base = dram_macro_128kb.static_power_model
        slow = dataclasses.replace(base, retention_time=10e-3)
        fast = dataclasses.replace(base, retention_time=100e-6)
        assert slow.report().power < fast.report().power
        assert slow.report().power == pytest.approx(
            fast.report().power / 100.0)

    def test_rejects_nonpositive_retention(self, dram_macro_128kb):
        model = dataclasses.replace(dram_macro_128kb.static_power_model,
                                    retention_time=0.0)
        with pytest.raises(ConfigurationError):
            model.resolved_retention()


class TestPaperClaim:
    def test_factor_10_band_at_2mb(self, dram_macro_2mb, sram_macro_2mb):
        """Paper Sec. IV: 'the cell static power consumption is 10 times
        less for DRAM than for the SRAM memory, for a 2 Mb memory'.
        Accept a 5x-20x band (our substrate is a calibrated model)."""
        ratio = (sram_macro_2mb.static_power().power
                 / dram_macro_2mb.static_power().power)
        assert 5.0 < ratio < 20.0

    def test_factor_holds_at_128kb(self, dram_macro_128kb, sram_macro_128kb):
        ratio = (sram_macro_128kb.static_power().power
                 / dram_macro_128kb.static_power().power)
        assert 5.0 < ratio < 20.0

    def test_static_cell_without_retention_model(self, sram_macro_128kb):
        """Asking a static cell for a resolved retention is an error."""
        model = sram_macro_128kb.static_power_model
        with pytest.raises(ConfigurationError):
            model.resolved_retention()
