"""Tests for the access-time model (paper Fig. 7a)."""

import dataclasses

import pytest

from repro.errors import ConfigurationError
from repro.units import kb, Mb, ns, ps


class TestAccessBreakdown:
    def test_total_is_sum(self, dram_macro_128kb):
        timing = dram_macro_128kb.access_timing()
        assert timing.total == pytest.approx(
            sum(timing.breakdown().values()))

    def test_all_stages_positive(self, dram_macro_128kb):
        for stage, value in dram_macro_128kb.access_timing().breakdown().items():
            assert value > 0, stage

    def test_headline_band(self, dram_macro_128kb):
        """Paper: 1.3 ns for the 128 kb macro; the model must land in a
        +-40 % band around it."""
        assert 0.78 * ns < dram_macro_128kb.access_time() < 1.82 * ns

    def test_charge_sharing_fast(self, dram_macro_128kb):
        """The whole point of the short LBL: signal development is a
        small fraction of the access."""
        timing = dram_macro_128kb.access_timing()
        assert timing.bitline < 0.1 * timing.total


class TestDramVsSram:
    def test_similar_at_128kb(self, dram_macro_128kb, sram_macro_128kb):
        """Paper Fig. 7a: 'the impact of using this DRAM topology in term
        of access time is negligible'."""
        ratio = dram_macro_128kb.access_time() / sram_macro_128kb.access_time()
        assert 0.85 < ratio < 1.25

    def test_dram_not_slower_at_2mb(self, dram_macro_2mb, sram_macro_2mb):
        """At 2 Mb the denser DRAM has shorter global wires: the gap
        closes ('especially for medium size (2Mb) memories')."""
        assert dram_macro_2mb.access_time() <= sram_macro_2mb.access_time()

    def test_wordline_overdrive_penalty(self, dram_macro_128kb,
                                        sram_macro_128kb):
        """The DRAM word-line path pays the level shifter."""
        dram_wl = dram_macro_128kb.access_timing().wordline
        sram_wl = sram_macro_128kb.access_timing().wordline
        assert dram_wl > sram_wl


class TestSizeScaling:
    def test_monotone_in_size(self, dram_macro_128kb, dram_macro_2mb):
        assert dram_macro_2mb.access_time() > dram_macro_128kb.access_time()

    def test_growth_is_mild(self, dram_macro_128kb, dram_macro_2mb):
        """16x the bits costs well under 2x the access time — the
        hierarchical organization at work."""
        ratio = dram_macro_2mb.access_time() / dram_macro_128kb.access_time()
        assert ratio < 1.6


class TestMarginKnobs:
    def test_corner_factor_scales_total(self, dram_macro_128kb):
        timing = dram_macro_128kb.timing_model
        relaxed = dataclasses.replace(timing, corner_factor=1.0)
        assert timing.access_time() == pytest.approx(
            relaxed.access_time() * timing.corner_factor)

    def test_corner_factor_validated(self, dram_macro_128kb):
        with pytest.raises(ConfigurationError):
            dataclasses.replace(dram_macro_128kb.timing_model,
                                corner_factor=0.5)

    def test_infeasible_signal_rejected(self, dram_macro_128kb):
        """A monolithic bitline starves the SA: the model refuses."""
        org = dram_macro_128kb.organization
        mono = dataclasses.replace(org, cells_per_lbl=org.n_words,
                                   block_columns=None)
        model = dataclasses.replace(dram_macro_128kb.timing_model,
                                    organization=mono)
        with pytest.raises(ConfigurationError):
            model.bitline_delay()


class TestWriteAfterRead:
    def test_hidden_restore_positive_for_dram(self, dram_macro_128kb):
        restore = dram_macro_128kb.timing_model.write_after_read_delay()
        assert restore > 10 * ps

    def test_zero_for_sram(self, sram_macro_128kb):
        assert sram_macro_128kb.timing_model.write_after_read_delay() == 0.0

    def test_restore_not_in_access_path(self, dram_macro_128kb):
        """Paper Sec. II: the restore runs while the GBL is sensed."""
        timing = dram_macro_128kb.access_timing()
        restore = dram_macro_128kb.timing_model.write_after_read_delay()
        assert restore > timing.global_bitline  # it genuinely overlaps
        assert "restore" not in timing.breakdown()
