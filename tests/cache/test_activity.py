"""Tests for the activity-to-power model (paper Fig. 9)."""

import dataclasses

import pytest

from repro.cache import ActivityPowerModel
from repro.errors import ConfigurationError


@pytest.fixture(scope="module")
def dram_power(dram_macro_128kb):
    return ActivityPowerModel(macro=dram_macro_128kb)


@pytest.fixture(scope="module")
def sram_power(sram_macro_128kb):
    return ActivityPowerModel(macro=sram_macro_128kb)


class TestCurveShape:
    def test_power_monotone_in_activity(self, dram_power):
        curve = dram_power.curve([0.0, 0.25, 0.5, 0.75, 1.0])
        totals = [p.total for p in curve]
        assert all(b > a for a, b in zip(totals, totals[1:]))

    def test_zero_activity_is_static_floor(self, dram_power,
                                           dram_macro_128kb):
        point = dram_power.power_at(0.0)
        assert point.dynamic_power == 0.0
        assert point.total == pytest.approx(
            dram_macro_128kb.static_power().power)

    def test_mix_weights_energies(self, dram_macro_128kb):
        read_only = ActivityPowerModel(macro=dram_macro_128kb,
                                       read_fraction=1.0)
        write_only = ActivityPowerModel(macro=dram_macro_128kb,
                                        read_fraction=0.0)
        assert (read_only.average_access_energy()
                < write_only.average_access_energy())


class TestFig9Claim:
    def test_dram_wins_at_low_activity(self, dram_power, sram_power):
        """Paper: 'an overall power consumption improvement, especially
        for large arrays with low activity'."""
        ratio = (sram_power.power_at(0.001).total
                 / dram_power.power_at(0.001).total)
        assert ratio > 3.0

    def test_gap_narrows_at_high_activity(self, dram_power, sram_power):
        low = (sram_power.power_at(0.001).total
               / dram_power.power_at(0.001).total)
        high = (sram_power.power_at(1.0).total
                / dram_power.power_at(1.0).total)
        assert high < 0.5 * low

    def test_static_dominated_threshold(self, dram_power, sram_power):
        """The SRAM's leakage floor dominates up to a much higher
        activity than the DRAM's refresh floor."""
        assert (sram_power.static_dominated_below()
                > 3 * dram_power.static_dominated_below())


class TestValidation:
    def test_activity_bounds(self, dram_power):
        with pytest.raises(ConfigurationError):
            dram_power.power_at(1.5)

    def test_clock_validated(self, dram_macro_128kb):
        with pytest.raises(ConfigurationError):
            ActivityPowerModel(macro=dram_macro_128kb, clock_frequency=0.0)

    def test_read_fraction_validated(self, dram_macro_128kb):
        with pytest.raises(ConfigurationError):
            ActivityPowerModel(macro=dram_macro_128kb, read_fraction=-0.1)
