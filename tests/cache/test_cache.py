"""Tests for the set-associative cache model."""

import pytest

from repro.cache import Cache
from repro.errors import ConfigurationError


class TestBasics:
    def test_cold_miss_then_hit(self):
        cache = Cache(capacity_words=256, ways=4, line_words=8)
        assert not cache.access(100).hit
        assert cache.access(100).hit

    def test_line_granularity(self):
        cache = Cache(capacity_words=256, ways=4, line_words=8)
        cache.access(64)
        # Same 8-word line: hit; next line: miss.
        assert cache.access(71).hit
        assert not cache.access(72).hit

    def test_stats_counting(self):
        cache = Cache(capacity_words=256, ways=4, line_words=8)
        cache.access(0)
        cache.access(0)
        cache.access(8, write=True)
        assert cache.stats.reads == 2
        assert cache.stats.writes == 1
        assert cache.stats.read_hits == 1
        assert cache.stats.hit_rate == pytest.approx(1 / 3)

    def test_geometry(self):
        cache = Cache(capacity_words=1024, ways=4, line_words=8)
        assert cache.n_sets == 32


class TestReplacement:
    def test_lru_eviction(self):
        cache = Cache(capacity_words=16, ways=2, line_words=8)
        # One set (16 / (2*8) = 1), two ways of 8-word lines.
        cache.access(0)    # line A
        cache.access(8)    # line B
        cache.access(0)    # touch A: B becomes LRU
        cache.access(16)   # line C evicts B
        assert cache.access(0).hit          # A still resident
        assert not cache.access(8).hit      # B was evicted

    def test_dirty_eviction_reports_victim(self):
        cache = Cache(capacity_words=16, ways=2, line_words=8)
        cache.access(0, write=True)
        cache.access(8)
        result = cache.access(16)  # evicts dirty line 0
        assert result.evicted_dirty_line == 0
        assert cache.stats.dirty_evictions == 1

    def test_clean_eviction_reports_nothing(self):
        cache = Cache(capacity_words=16, ways=2, line_words=8)
        cache.access(0)
        cache.access(8)
        result = cache.access(16)
        assert result.evicted_dirty_line is None

    def test_capacity_invariant(self):
        cache = Cache(capacity_words=128, ways=4, line_words=4)
        for address in range(0, 4000, 4):
            cache.access(address)
        assert cache.resident_lines() <= 128 // 4


class TestWriteSemantics:
    def test_write_allocates(self):
        cache = Cache(capacity_words=256, ways=4, line_words=8)
        cache.access(40, write=True)
        assert cache.contains(40)

    def test_write_hit_marks_dirty(self):
        cache = Cache(capacity_words=16, ways=2, line_words=8)
        cache.access(0)          # clean
        cache.access(0, write=True)  # now dirty
        cache.access(8)
        result = cache.access(16)
        assert result.evicted_dirty_line == 0

    def test_flush_counts_dirty(self):
        cache = Cache(capacity_words=256, ways=4, line_words=8)
        cache.access(0, write=True)
        cache.access(64)
        assert cache.flush() == 1
        assert cache.resident_lines() == 0


class TestValidation:
    def test_rejects_indivisible_geometry(self):
        with pytest.raises(ConfigurationError):
            Cache(capacity_words=100, ways=3, line_words=8)

    def test_rejects_zero_capacity(self):
        with pytest.raises(ConfigurationError):
            Cache(capacity_words=0)

    def test_rejects_negative_address(self):
        cache = Cache(capacity_words=256, ways=4, line_words=8)
        with pytest.raises(ConfigurationError):
            cache.access(-1)
