"""Tests for the hybrid cache hierarchy (paper Fig. 2 application)."""

import pytest

from repro.cache import (
    Cache,
    CacheHierarchy,
    HierarchyLevel,
    looping_addresses,
    uniform_addresses,
)
from repro.core import FastDramDesign
from repro.errors import ConfigurationError
from repro.units import Mb, kb, ns, pJ


def build_hierarchy() -> CacheHierarchy:
    l1 = FastDramDesign().build(128 * kb, retention_override=1e-3)
    l2 = FastDramDesign(cells_per_lbl=128).build(2 * Mb,
                                                 retention_override=1e-3)
    return CacheHierarchy(levels=[
        HierarchyLevel("L1", Cache(2048, 4, 8), l1),
        HierarchyLevel("L2", Cache(32768, 8, 8), l2),
    ])


class TestBehaviour:
    def test_looping_fits_in_l1(self, rng):
        hierarchy = build_hierarchy()
        trace = looping_addresses(20000, 1000, rng)
        stats = hierarchy.run(trace)
        assert stats.hit_rate(0) > 0.9
        assert stats.backing_accesses < 200

    def test_uniform_blows_through(self, rng):
        hierarchy = build_hierarchy()
        trace = uniform_addresses(5000, 10_000_000, rng)
        stats = hierarchy.run(trace)
        assert stats.hit_rate(0) < 0.05
        assert stats.backing_accesses > 4000

    def test_l2_catches_l1_capacity_misses(self, rng):
        hierarchy = build_hierarchy()
        # A working set bigger than L1 but inside L2: after the cold
        # pass, most L1 misses must hit in L2.
        trace = looping_addresses(60000, 16000, rng)
        stats = hierarchy.run(trace)
        l1_misses = stats.accesses - stats.level_hits[0]
        assert l1_misses > 0
        assert stats.level_hits[1] / l1_misses > 0.6

    def test_energy_tracks_hit_level(self, rng):
        hierarchy = build_hierarchy()
        cheap = hierarchy.run(looping_addresses(5000, 500, rng))
        hierarchy2 = build_hierarchy()
        costly = hierarchy2.run(uniform_addresses(5000, 10_000_000, rng))
        assert cheap.average_energy < 0.2 * costly.average_energy

    def test_average_time_at_least_l1(self, rng):
        hierarchy = build_hierarchy()
        stats = hierarchy.run(looping_addresses(3000, 500, rng))
        l1_time = hierarchy.levels[0].macro.access_time()
        assert stats.average_time >= l1_time

    def test_accesses_counted(self, rng):
        hierarchy = build_hierarchy()
        stats = hierarchy.run(looping_addresses(1234, 100, rng))
        assert stats.accesses == 1234


class TestValidation:
    def test_levels_must_grow(self):
        l1 = FastDramDesign().build(128 * kb, retention_override=1e-3)
        with pytest.raises(ConfigurationError):
            CacheHierarchy(levels=[
                HierarchyLevel("L1", Cache(2048, 4, 8), l1),
                HierarchyLevel("L2", Cache(1024, 4, 8), l1),
            ])

    def test_cache_must_fit_macro(self):
        small_macro = FastDramDesign().build(128 * kb,
                                             retention_override=1e-3)
        with pytest.raises(ConfigurationError):
            CacheHierarchy(levels=[
                HierarchyLevel("L1", Cache(65536, 4, 8), small_macro),
            ])

    def test_needs_a_level(self):
        with pytest.raises(ConfigurationError):
            CacheHierarchy(levels=[])
