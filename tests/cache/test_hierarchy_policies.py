"""Tests for hierarchy behaviour under write policies and prefetching."""

import pytest

from repro.cache import (
    Cache,
    CacheHierarchy,
    HierarchyLevel,
    NextLinePrefetcher,
    looping_addresses,
    streaming_addresses,
)
from repro.core import FastDramDesign
from repro.units import Mb, kb


def macros():
    l1 = FastDramDesign().build(128 * kb, retention_override=1e-3)
    l2 = FastDramDesign(cells_per_lbl=128).build(2 * Mb,
                                                 retention_override=1e-3)
    return l1, l2


class TestWriteThroughHierarchy:
    def _build(self, write_back: bool) -> CacheHierarchy:
        l1, l2 = macros()
        return CacheHierarchy(levels=[
            HierarchyLevel("L1", Cache(2048, 4, 8, write_back=write_back),
                           l1),
            HierarchyLevel("L2", Cache(32768, 8, 8), l2),
        ])

    def test_write_through_costs_more_energy(self, rng):
        trace = looping_addresses(8000, 1000, rng, write_fraction=0.5)
        wb = self._build(write_back=True).run(trace)
        wt = self._build(write_back=False).run(trace)
        assert wt.total_energy > wb.total_energy

    def test_hit_rates_unchanged_by_policy(self, rng):
        trace = looping_addresses(8000, 1000, rng, write_fraction=0.5)
        wb = self._build(write_back=True).run(trace)
        wt = self._build(write_back=False).run(trace)
        assert wt.hit_rate(0) == pytest.approx(wb.hit_rate(0), abs=0.01)

    def test_hits_counted_once_per_access(self, rng):
        trace = looping_addresses(5000, 500, rng, write_fraction=0.5)
        stats = self._build(write_back=False).run(trace)
        assert sum(stats.level_hits) <= stats.accesses


class TestPrefetchedHierarchy:
    def test_prefetched_l1_accepted_and_helps(self, rng):
        l1, l2 = macros()
        plain = CacheHierarchy(levels=[
            HierarchyLevel("L1", Cache(2048, 4, 8), l1),
            HierarchyLevel("L2", Cache(32768, 8, 8), l2),
        ])
        prefetched = CacheHierarchy(levels=[
            HierarchyLevel("L1",
                           NextLinePrefetcher(Cache(2048, 4, 8), depth=2),
                           l1),
            HierarchyLevel("L2", Cache(32768, 8, 8), l2),
        ])
        trace = streaming_addresses(10000, 1 << 20, rng, stride=1)
        plain_stats = plain.run(trace)
        prefetch_stats = prefetched.run(trace)
        assert prefetch_stats.hit_rate(0) > plain_stats.hit_rate(0) + 0.05
