"""Tests for write policies and the next-line prefetcher."""

import numpy as np
import pytest

from repro.cache import Cache, NextLinePrefetcher, streaming_addresses
from repro.errors import ConfigurationError


class TestWritePolicies:
    def test_write_through_never_dirty(self):
        cache = Cache(16, 2, 8, write_back=False)
        cache.access(0, write=True)
        cache.access(0, write=True)
        cache.access(8)
        result = cache.access(16)  # evicts line 0
        assert result.evicted_dirty_line is None
        assert cache.stats.dirty_evictions == 0

    def test_write_back_marks_dirty(self):
        cache = Cache(16, 2, 8, write_back=True)
        cache.access(0, write=True)
        cache.access(8)
        assert cache.access(16).evicted_dirty_line == 0

    def test_no_allocate_bypasses_write_miss(self):
        cache = Cache(256, 4, 8, write_allocate=False)
        result = cache.access(40, write=True)
        assert not result.hit
        assert not cache.contains(40)

    def test_no_allocate_still_allocates_reads(self):
        cache = Cache(256, 4, 8, write_allocate=False)
        cache.access(40, write=False)
        assert cache.contains(40)

    def test_write_hit_still_hits_under_no_allocate(self):
        cache = Cache(256, 4, 8, write_allocate=False)
        cache.access(40)  # read-allocate
        assert cache.access(40, write=True).hit


class TestPrefetcher:
    def test_streaming_hit_rate_improves(self, rng):
        trace = streaming_addresses(10000, 1 << 20, rng, stride=1)
        plain = Cache(1024, 4, 8)
        prefetched = NextLinePrefetcher(Cache(1024, 4, 8), depth=2)
        for address, write in zip(trace.addresses, trace.writes):
            plain.access(int(address), bool(write))
            prefetched.access(int(address), bool(write))
        assert prefetched.stats.hit_rate > plain.stats.hit_rate + 0.05

    def test_accuracy_high_on_streams(self, rng):
        trace = streaming_addresses(5000, 1 << 20, rng, stride=1)
        prefetched = NextLinePrefetcher(Cache(1024, 4, 8), depth=1)
        for address, write in zip(trace.addresses, trace.writes):
            prefetched.access(int(address), bool(write))
        assert prefetched.prefetch_stats.accuracy > 0.9

    def test_accuracy_low_on_random(self, rng):
        addresses = rng.integers(0, 1 << 22, size=4000)
        prefetched = NextLinePrefetcher(Cache(1024, 4, 8), depth=1)
        for address in addresses:
            prefetched.access(int(address))
        assert prefetched.prefetch_stats.accuracy < 0.3

    def test_demand_stats_not_polluted(self, rng):
        """Prefetch fills must not count as demand reads."""
        trace = streaming_addresses(2000, 1 << 20, rng, stride=1)
        prefetched = NextLinePrefetcher(Cache(1024, 4, 8), depth=2)
        for address, write in zip(trace.addresses, trace.writes):
            prefetched.access(int(address), bool(write))
        assert prefetched.stats.accesses == len(trace)

    def test_depth_validated(self):
        with pytest.raises(ConfigurationError):
            NextLinePrefetcher(Cache(64, 2, 8), depth=0)

    def test_delegates_geometry(self):
        prefetched = NextLinePrefetcher(Cache(64, 2, 8))
        assert prefetched.line_words == 8
