"""Tests for address-trace file I/O."""

import numpy as np
import pytest

from repro.cache import (
    load_trace,
    save_trace,
    trace_from_text,
    trace_to_text,
    uniform_addresses,
)
from repro.errors import ConfigurationError


class TestRoundTrip:
    def test_exact_roundtrip(self, rng, tmp_path):
        trace = uniform_addresses(500, 10000, rng)
        path = save_trace(trace, tmp_path / "trace.txt")
        loaded = load_trace(path)
        assert np.array_equal(loaded.addresses, trace.addresses)
        assert np.array_equal(loaded.writes, trace.writes)

    def test_text_roundtrip(self, rng):
        trace = uniform_addresses(100, 1000, rng, write_fraction=0.3)
        again = trace_from_text(trace_to_text(trace))
        assert np.array_equal(again.addresses, trace.addresses)
        assert np.array_equal(again.writes, trace.writes)


class TestParsing:
    def test_hex_addresses(self):
        trace = trace_from_text("R 0x10\nW 0x20\n")
        assert list(trace.addresses) == [16, 32]
        assert list(trace.writes) == [False, True]

    def test_comments_and_blanks_skipped(self):
        trace = trace_from_text("# header\n\nR 1\n  \nW 2\n")
        assert len(trace) == 2

    def test_bad_kind_rejected(self):
        with pytest.raises(ConfigurationError, match="line 1"):
            trace_from_text("X 1\n")

    def test_bad_address_rejected(self):
        with pytest.raises(ConfigurationError, match="bad address"):
            trace_from_text("R zz\n")

    def test_negative_address_rejected(self):
        with pytest.raises(ConfigurationError, match="negative"):
            trace_from_text("R -5\n")

    def test_empty_file_rejected(self):
        with pytest.raises(ConfigurationError, match="no accesses"):
            trace_from_text("# nothing\n")

    def test_missing_file_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError, match="no trace file"):
            load_trace(tmp_path / "absent.txt")
