"""Tests for synthetic address traces."""

import numpy as np
import pytest

from repro.cache import (
    looping_addresses,
    streaming_addresses,
    uniform_addresses,
    zipf_addresses,
)
from repro.errors import ConfigurationError


class TestUniform:
    def test_footprint_respected(self, rng):
        trace = uniform_addresses(10000, 512, rng)
        assert trace.addresses.max() < 512
        assert trace.addresses.min() >= 0

    def test_write_fraction(self, rng):
        trace = uniform_addresses(20000, 512, rng, write_fraction=0.3)
        assert trace.write_fraction == pytest.approx(0.3, abs=0.02)

    def test_length(self, rng):
        assert len(uniform_addresses(123, 512, rng)) == 123

    def test_rejects_empty(self, rng):
        with pytest.raises(ConfigurationError):
            uniform_addresses(0, 512, rng)

    def test_rejects_bad_write_fraction(self, rng):
        with pytest.raises(ConfigurationError):
            uniform_addresses(10, 512, rng, write_fraction=1.5)


class TestZipf:
    def test_skewed_towards_low_addresses(self, rng):
        trace = zipf_addresses(50000, 10000, rng)
        # The hot head: a small set of addresses dominates.
        counts = np.bincount(trace.addresses)
        top_share = np.sort(counts)[::-1][:10].sum() / len(trace)
        # 10 addresses out of 10000 carry over a third of the traffic.
        assert top_share > 0.3

    def test_exponent_validated(self, rng):
        with pytest.raises(ConfigurationError):
            zipf_addresses(100, 100, rng, exponent=0.9)


class TestStreaming:
    def test_strictly_strided(self, rng):
        trace = streaming_addresses(1000, 100000, rng, stride=4)
        diffs = np.diff(trace.addresses)
        assert np.all(diffs[diffs > 0] == 4)

    def test_wraps_at_footprint(self, rng):
        trace = streaming_addresses(300, 100, rng)
        assert trace.addresses.max() < 100

    def test_stride_validated(self, rng):
        with pytest.raises(ConfigurationError):
            streaming_addresses(100, 1000, rng, stride=0)


class TestLooping:
    def test_repeats_working_set(self, rng):
        trace = looping_addresses(1000, 100, rng)
        assert set(np.unique(trace.addresses)) == set(range(100))

    def test_high_reuse(self, rng):
        trace = looping_addresses(10000, 64, rng)
        assert len(np.unique(trace.addresses)) == 64
