"""Tests for the cell-to-array interface."""

import pytest

from repro.cells import CellSpec, StorageKind
from repro.errors import ConfigurationError
from repro.units import fF, um2


def static_spec(**overrides) -> CellSpec:
    fields = dict(
        name="test-static",
        kind=StorageKind.STATIC,
        area=1 * um2,
        bitline_cap_per_cell=0.2 * fF,
        wordline_cap_per_cell=0.5 * fF,
        stored_high=1.2,
        wordline_voltage=1.2,
        standby_leakage=1e-10,
        read_current=100e-6,
    )
    fields.update(overrides)
    return CellSpec(**fields)


def dynamic_spec(trench_cell, **overrides) -> CellSpec:
    spec = trench_cell.spec()
    if not overrides:
        return spec
    import dataclasses
    return dataclasses.replace(spec, **overrides)


class TestValidation:
    def test_static_needs_read_current(self):
        with pytest.raises(ConfigurationError):
            static_spec(read_current=None)

    def test_dynamic_needs_cap_and_retention(self, trench_cell):
        import dataclasses
        with pytest.raises(ConfigurationError):
            dataclasses.replace(trench_cell.spec(), charge_sharing_cap=None)
        with pytest.raises(ConfigurationError):
            dataclasses.replace(trench_cell.spec(), retention=None)

    def test_rejects_nonpositive_area(self):
        with pytest.raises(ConfigurationError):
            static_spec(area=0.0)

    def test_rejects_negative_leakage(self):
        with pytest.raises(ConfigurationError):
            static_spec(standby_leakage=-1.0)

    def test_rejects_nonpositive_line_loads(self):
        with pytest.raises(ConfigurationError):
            static_spec(bitline_cap_per_cell=0.0)


class TestVoltageStep:
    def test_static_cell_has_no_step(self):
        with pytest.raises(ConfigurationError):
            static_spec().bitline_voltage_step(10 * fF, 1.0)

    def test_dynamic_step_divider(self, trench_cell):
        spec = trench_cell.spec()
        step = spec.bitline_voltage_step(bitline_cap=30 * fF,
                                         precharge_voltage=1.0)
        assert step == pytest.approx(0.5)

    def test_step_rejects_bad_bitline(self, trench_cell):
        with pytest.raises(ConfigurationError):
            trench_cell.spec().bitline_voltage_step(-1.0, 1.0)
