"""Tests for the 1T1C DRAM cell — both methodology variants."""

import dataclasses

import pytest

from repro.cells import Dram1t1cCell, StorageKind
from repro.errors import ConfigurationError
from repro.tech import CapacitorKind, TechnologyNode
from repro.units import fF, um2, V


class TestScratchpad:
    def test_paper_parameters(self, scratchpad_cell):
        assert scratchpad_cell.capacitor.capacitance == pytest.approx(11 * fF)
        assert scratchpad_cell.capacitor.kind is CapacitorKind.CMOS_GATE
        assert scratchpad_cell.wordline_voltage == pytest.approx(1.2)

    def test_degraded_stored_one(self, scratchpad_cell):
        """No overdrive: the stored '1' loses an HVT threshold."""
        assert scratchpad_cell.stored_high < 0.9

    def test_area_below_sram(self, scratchpad_cell, logic_node):
        assert scratchpad_cell.area() < logic_node.sram6t_cell_area


class TestDramTechnology:
    def test_paper_parameters(self, trench_cell):
        assert trench_cell.capacitor.capacitance == pytest.approx(30 * fF)
        assert trench_cell.capacitor.kind is CapacitorKind.DEEP_TRENCH
        assert trench_cell.wordline_voltage == pytest.approx(1.7)
        assert trench_cell.wordline_low_voltage == pytest.approx(-0.3)

    def test_full_stored_one_with_overdrive(self, trench_cell):
        assert trench_cell.stored_high == pytest.approx(
            trench_cell.bitline_precharge)

    def test_cell_area_03um2(self, trench_cell):
        assert trench_cell.area() == pytest.approx(0.3 * um2)


class TestReliabilityRules:
    def test_logic_process_rejects_overdrive(self, logic_node):
        """Paper Sec. III: overdrive is 'not possible in a logic process,
        due to the reliability electrical rules restrictions'."""
        from repro.tech import StorageCapacitor
        with pytest.raises(ConfigurationError):
            Dram1t1cCell(
                node=logic_node,
                capacitor=StorageCapacitor.cmos_gate(logic_node),
                wordline_voltage=1.7 * V,
            )

    def test_logic_process_rejects_negative_wl(self, logic_node):
        from repro.tech import StorageCapacitor
        with pytest.raises(ConfigurationError):
            Dram1t1cCell(
                node=logic_node,
                capacitor=StorageCapacitor.cmos_gate(logic_node),
                wordline_low_voltage=-0.3 * V,
            )

    def test_dram_process_allows_overdrive(self, trench_cell):
        assert trench_cell.wordline_voltage > trench_cell.node.vdd

    def test_beyond_vdd_max_rejected(self, dram_node):
        from repro.tech import StorageCapacitor
        with pytest.raises(ConfigurationError):
            Dram1t1cCell(
                node=dram_node,
                capacitor=StorageCapacitor.deep_trench(dram_node),
                wordline_voltage=2.5 * V,
            )

    def test_positive_wordline_low_rejected(self, dram_node):
        from repro.tech import StorageCapacitor
        with pytest.raises(ConfigurationError):
            Dram1t1cCell(
                node=dram_node,
                capacitor=StorageCapacitor.deep_trench(dram_node),
                wordline_low_voltage=0.2 * V,
            )


class TestReadBehaviour:
    def test_voltage_step_capacitive_divider(self, trench_cell):
        c_cell = trench_cell.capacitor.capacitance
        c_bl = 10 * fF
        step = trench_cell.read_voltage_step(c_bl)
        expected = trench_cell.bitline_precharge * c_cell / (c_cell + c_bl)
        assert step == pytest.approx(expected)

    def test_step_shrinks_with_bitline_cap(self, trench_cell):
        """The paper's core limitation: the voltage drop is set by the
        cell-to-bitline capacitance ratio."""
        short = trench_cell.read_voltage_step(5 * fF)
        long = trench_cell.read_voltage_step(500 * fF)
        assert long < 0.2 * short

    def test_rejects_nonpositive_bitline(self, trench_cell):
        with pytest.raises(ConfigurationError):
            trench_cell.read_voltage_step(0.0)

    def test_transfer_time_constant_subnanosecond(self, trench_cell):
        assert 0 < trench_cell.transfer_time_constant() < 1e-9

    def test_overdrive_speeds_transfer(self, trench_cell):
        slow = dataclasses.replace(trench_cell, wordline_voltage=1.2 * V)
        assert (trench_cell.transfer_time_constant()
                < slow.transfer_time_constant())


class TestSpec:
    def test_dynamic_kind(self, trench_cell):
        spec = trench_cell.spec()
        assert spec.kind is StorageKind.DYNAMIC
        assert spec.is_dynamic
        assert spec.retention is not None

    def test_spec_carries_wordline_voltage(self, trench_cell):
        assert trench_cell.spec().wordline_voltage == pytest.approx(1.7)

    def test_spec_charge_sharing_cap(self, trench_cell):
        assert trench_cell.spec().charge_sharing_cap == pytest.approx(30 * fF)
