"""Tests for the 6T SRAM cell model."""

import pytest

from repro.cells import Sram6tCell, StorageKind, inverter_vtc
from repro.errors import ConfigurationError
from repro.tech import VtFlavor
from repro.units import um2


class TestDevices:
    def test_default_ratios(self, sram_cell):
        assert sram_cell.beta_ratio == pytest.approx(2.0 / 1.5)

    def test_read_current_positive(self, sram_cell):
        assert sram_cell.read_current() > 10e-6

    def test_rejects_zero_widths(self, logic_node):
        with pytest.raises(ConfigurationError):
            Sram6tCell(logic_node, pulldown_units=0.0)


class TestVtc:
    def test_inverts(self, sram_cell):
        vtc = inverter_vtc(sram_cell, during_read=False)
        assert vtc(0.0) > 1.1
        assert vtc(1.2) < 0.05

    def test_monotone_non_increasing(self, sram_cell):
        vtc = inverter_vtc(sram_cell, during_read=False)
        values = [vtc(v) for v in (0.0, 0.3, 0.5, 0.7, 0.9, 1.2)]
        assert all(b <= a + 1e-6 for a, b in zip(values, values[1:]))

    def test_read_disturb_lifts_low_level(self, sram_cell):
        hold = inverter_vtc(sram_cell, during_read=False)
        read = inverter_vtc(sram_cell, during_read=True)
        assert read(1.2) > hold(1.2)


class TestSnm:
    def test_hold_snm_band(self, sram_cell):
        """90 nm 6T at 1.2 V: hold SNM of a few hundred millivolts."""
        snm = sram_cell.hold_snm()
        assert 0.25 < snm < 0.55

    def test_read_snm_smaller_than_hold(self, sram_cell):
        assert sram_cell.read_snm() < 0.6 * sram_cell.hold_snm()

    def test_weaker_beta_degrades_read_snm(self, logic_node):
        strong = Sram6tCell(logic_node, pulldown_units=3.0, access_units=1.0)
        weak = Sram6tCell(logic_node, pulldown_units=1.0, access_units=2.0)
        assert weak.read_snm() < strong.read_snm()

    def test_snm_positive_for_functional_cell(self, sram_cell):
        assert sram_cell.read_snm() > 0.05


class TestSpec:
    def test_static_kind(self, sram_cell):
        spec = sram_cell.spec()
        assert spec.kind is StorageKind.STATIC
        assert not spec.is_dynamic

    def test_two_access_gates_on_wordline(self, sram_cell):
        spec = sram_cell.spec()
        assert spec.wordline_cap_per_cell == pytest.approx(
            2 * sram_cell.access.gate_capacitance())

    def test_area_is_node_calibrated(self, sram_cell, logic_node):
        assert sram_cell.area() == logic_node.sram6t_cell_area
        assert sram_cell.area() == pytest.approx(1.0 * um2)

    def test_leakage_band(self, sram_cell):
        """An LP SVT cell leaks a few hundred picoamps at 300 K."""
        assert 5e-11 < sram_cell.leakage() < 5e-9

    def test_hvt_cell_leaks_less(self, logic_node):
        svt = Sram6tCell(logic_node, flavor=VtFlavor.SVT)
        hvt = Sram6tCell(logic_node, flavor=VtFlavor.HVT)
        assert hvt.leakage() < 0.2 * svt.leakage()
