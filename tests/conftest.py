"""Shared fixtures.

Expensive objects (technology nodes, built macros, SPICE waveform runs)
are session-scoped: they are immutable (frozen dataclasses), so sharing
them across tests is safe and keeps the suite fast.
"""

from __future__ import annotations

import importlib.util
import signal

import numpy as np
import pytest

from repro import FastDramDesign, SramBaselineDesign
from repro.cells import Dram1t1cCell, Sram6tCell
from repro.tech import TechnologyNode
from repro.units import kb

RETENTION_FOR_TESTS = 1e-3  # pin retention: no Monte-Carlo in model tests

# Per-test wall-clock ceiling.  CI installs pytest-timeout and passes
# --timeout on the command line; containers without the plugin get this
# SIGALRM fallback so a hung solver (the exact failure mode the recovery
# ladder exists for) can never wedge the suite.
TEST_TIMEOUT_SECONDS = 120
_HAVE_TIMEOUT_PLUGIN = importlib.util.find_spec("pytest_timeout") is not None

if not _HAVE_TIMEOUT_PLUGIN and hasattr(signal, "SIGALRM"):

    @pytest.hookimpl(hookwrapper=True)
    def pytest_runtest_call(item):
        def on_alarm(signum, frame):
            raise TimeoutError(
                f"test exceeded the {TEST_TIMEOUT_SECONDS}s ceiling "
                "(SIGALRM fallback; install pytest-timeout for the "
                "full plugin)")

        previous = signal.signal(signal.SIGALRM, on_alarm)
        signal.alarm(TEST_TIMEOUT_SECONDS)
        try:
            yield
        finally:
            signal.alarm(0)
            signal.signal(signal.SIGALRM, previous)


@pytest.fixture(scope="session")
def logic_node() -> TechnologyNode:
    return TechnologyNode.logic_90nm()


@pytest.fixture(scope="session")
def dram_node() -> TechnologyNode:
    return TechnologyNode.dram_90nm()


@pytest.fixture(scope="session")
def sram_cell(logic_node) -> Sram6tCell:
    return Sram6tCell(logic_node)


@pytest.fixture(scope="session")
def scratchpad_cell(logic_node) -> Dram1t1cCell:
    return Dram1t1cCell.scratchpad(logic_node)


@pytest.fixture(scope="session")
def trench_cell(dram_node) -> Dram1t1cCell:
    return Dram1t1cCell.dram_technology(dram_node)


@pytest.fixture(scope="session")
def dram_macro_128kb():
    return FastDramDesign().build(128 * kb,
                                  retention_override=RETENTION_FOR_TESTS)


@pytest.fixture(scope="session")
def dram_macro_2mb():
    return FastDramDesign().build(2048 * kb,
                                  retention_override=RETENTION_FOR_TESTS)


@pytest.fixture(scope="session")
def sram_macro_128kb():
    return SramBaselineDesign().build(128 * kb)


@pytest.fixture(scope="session")
def sram_macro_2mb():
    return SramBaselineDesign().build(2048 * kb)


@pytest.fixture()
def rng() -> np.random.Generator:
    return np.random.default_rng(2009)
