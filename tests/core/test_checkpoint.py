"""Checkpoint/resume and run budgets: killed sweeps finish correctly.

The flagship guarantee (ISSUE acceptance): a sweep killed mid-run and
resumed from its checkpoint produces *exactly* the result an
uninterrupted run with the same seed would have produced.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.checkpoint import (Checkpoint, RunBudget, run_sweep)
from repro.core.designspace import (sweep_retention,
                                    sweep_retention_resumable,
                                    sweep_sizes, sweep_sizes_resumable)
from repro.core.optimizer import DesignOptimizer
from repro.errors import ConfigurationError, SimulationError
from repro.obs import config_fingerprint
from repro.units import kb, ms, us
from repro.variability.montecarlo import (run_monte_carlo,
                                          run_monte_carlo_resumable)


@pytest.fixture()
def ckpt(tmp_path):
    return Checkpoint(tmp_path / "sweep.ckpt.json", fingerprint="fp-1")


class TestCheckpointFile:
    def test_atomic_roundtrip(self, ckpt):
        ckpt.save({"a": 1, "b": [2, 3]})
        assert ckpt.load() == {"a": 1, "b": [2, 3]}
        assert not list(ckpt.path.parent.glob("*.tmp"))  # no litter

    def test_missing_file_loads_none(self, ckpt):
        assert ckpt.load() is None
        assert not ckpt.exists()

    def test_fingerprint_mismatch_refuses_resume(self, tmp_path):
        path = tmp_path / "c.json"
        Checkpoint(path, fingerprint="fp-old").save({"x": 1})
        with pytest.raises(ConfigurationError, match="fp-old"):
            Checkpoint(path, fingerprint="fp-new").load()

    def test_schema_mismatch_refuses_resume(self, ckpt):
        payload = json.loads(
            '{"schema": 999, "fingerprint": "fp-1", "done": {}}')
        ckpt.path.write_text(json.dumps(payload))
        with pytest.raises(ConfigurationError, match="schema"):
            ckpt.load()

    def test_corrupt_file_is_quarantined_not_fatal(self, ckpt):
        ckpt.path.write_text("{not json")
        assert ckpt.load() is None  # resume from scratch, not a crash
        sidecar = ckpt.path.with_name(ckpt.path.name + ".corrupt")
        assert sidecar.exists()
        assert sidecar.read_text() == "{not json"
        assert not ckpt.path.exists()

    def test_clear_removes_file(self, ckpt):
        ckpt.save({})
        ckpt.clear()
        assert not ckpt.exists()
        ckpt.clear()  # idempotent


class TestRunSweep:
    def test_completes_and_keeps_order(self):
        outcome = run_sweep([(k, lambda k=k: ord(k)) for k in "abc"])
        assert list(outcome.results) == ["a", "b", "c"]
        assert outcome.complete
        assert outcome.describe() == "3/3 completed"

    def test_duplicate_keys_rejected(self):
        with pytest.raises(ConfigurationError):
            run_sweep([("a", lambda: 1), ("a", lambda: 2)])

    def test_failures_recorded_not_raised(self):
        def boom():
            raise SimulationError("diverged")
        outcome = run_sweep([("ok", lambda: 1), ("bad", boom),
                             ("ok2", lambda: 2)])
        assert outcome.failures == ("bad",)
        assert outcome.completed == 2
        assert outcome.attempted == 3
        assert not outcome.complete

    def test_budget_max_failures_stops_sweep(self):
        def boom():
            raise SimulationError("diverged")
        outcome = run_sweep([("a", boom), ("b", boom),
                             ("c", lambda: 3)],
                            budget=RunBudget(max_failures=2))
        assert outcome.exhausted == "max_failures"
        assert "c" not in outcome.results

    def test_budget_max_seconds_stops_immediately(self):
        outcome = run_sweep([("a", lambda: 1)],
                            budget=RunBudget(max_seconds=0.0))
        assert outcome.exhausted == "max_seconds"
        assert outcome.completed == 0

    def test_killed_run_resumes_identically(self, ckpt):
        calls = []

        def items():
            return [(k, lambda k=k: calls.append(k) or ord(k))
                    for k in "abcde"]

        # "Kill" after two items via a failure budget on a poisoned run:
        # simpler — run with max_seconds=0 after pre-seeding 2 items.
        first = run_sweep(items()[:2], checkpoint=ckpt)
        assert first.completed == 2
        resumed = run_sweep(items(), checkpoint=ckpt)
        assert resumed.complete
        assert resumed.results == {k: ord(k) for k in "abcde"}
        # The first two items were restored, not re-evaluated.
        assert calls == ["a", "b", "c", "d", "e"]


class TestResumableSweeps:
    VALUES = (200 * us, 500 * us, 1 * ms)

    def test_retention_resume_matches_uninterrupted(self, tmp_path):
        ckpt = Checkpoint(tmp_path / "r.json",
                          config_fingerprint({"values": self.VALUES}))
        partial = sweep_retention_resumable(
            self.VALUES, checkpoint=ckpt,
            budget=RunBudget(max_seconds=0.0))
        assert partial.exhausted == "max_seconds"
        resumed = sweep_retention_resumable(self.VALUES, checkpoint=ckpt)
        assert resumed.complete
        assert list(resumed.results.values()) == sweep_retention(self.VALUES)

    def test_sizes_resume_matches_uninterrupted(self, tmp_path):
        sizes = (128 * kb, 512 * kb)
        ckpt = Checkpoint(tmp_path / "s.json",
                          config_fingerprint({"sizes": sizes}))
        sweep_sizes_resumable(sizes, checkpoint=ckpt)
        resumed = sweep_sizes_resumable(sizes, checkpoint=ckpt)
        assert list(resumed.results.values()) == sweep_sizes(sizes)

    def test_optimizer_partial_then_full(self, tmp_path):
        optimizer = DesignOptimizer(total_bits=128 * kb)
        ckpt = Checkpoint(tmp_path / "o.json",
                          config_fingerprint({"grid": "default"}))
        full = optimizer.run()
        assert full.complete
        assert full.completed == full.attempted > 0
        # A checkpointed run reproduces the uninterrupted result.
        again = optimizer.run(checkpoint=ckpt)
        resumed = optimizer.run(checkpoint=ckpt)
        assert resumed.best == again.best == full.best
        assert resumed.pareto_front == full.pareto_front

    def test_optimizer_budget_yields_partial_accounting(self):
        result = DesignOptimizer(total_bits=128 * kb).run(
            budget=RunBudget(max_failures=10**9, max_seconds=10.0))
        assert result.completed >= 1


class TestMonteCarloResume:
    @staticmethod
    def model(rng: np.random.Generator) -> float:
        return float(rng.normal(10.0, 2.0))

    def test_kill_and_resume_is_bit_identical(self, tmp_path):
        ckpt = Checkpoint(tmp_path / "mc.json", "fp-mc")
        killed = run_monte_carlo_resumable(
            self.model, count=50, seed=9, checkpoint=ckpt,
            budget=RunBudget(max_seconds=0.0))
        assert killed.exhausted == "max_seconds"
        assert not killed.complete
        resumed = run_monte_carlo_resumable(self.model, count=50, seed=9,
                                            checkpoint=ckpt)
        assert resumed.complete
        straight = run_monte_carlo(self.model, count=50, seed=9)
        np.testing.assert_array_equal(resumed.result.samples,
                                      straight.samples)

    def test_partial_mid_run_resume_is_bit_identical(self, tmp_path):
        ckpt = Checkpoint(tmp_path / "mc2.json", "fp-mc2")
        # Save every sample so the kill can land mid-run.
        state = run_monte_carlo_resumable(
            self.model, count=40, seed=3, checkpoint=ckpt, save_every=1,
            budget=RunBudget(max_failures=0))
        assert state.completed in (0, 40)  # failures never happen here
        resumed = run_monte_carlo_resumable(self.model, count=40, seed=3,
                                            checkpoint=ckpt)
        straight = run_monte_carlo(self.model, count=40, seed=3)
        np.testing.assert_array_equal(resumed.result.samples,
                                      straight.samples)

    def test_failed_samples_counted_against_budget(self):
        def flaky(rng: np.random.Generator) -> float:
            value = rng.uniform()
            if value < 0.5:
                raise SimulationError("non-convergent sample")
            return value

        outcome = run_monte_carlo_resumable(
            flaky, count=30, seed=1, budget=RunBudget(max_failures=5))
        assert outcome.exhausted == "max_failures"
        assert outcome.failed == 5
        assert outcome.attempted < 30
        assert outcome.describe().startswith(f"{outcome.completed}/30")

    def test_too_few_samples_yield_no_result(self):
        outcome = run_monte_carlo_resumable(
            self.model, count=10, seed=0,
            budget=RunBudget(max_seconds=0.0))
        assert outcome.result is None
