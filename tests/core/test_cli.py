"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_all_commands_registered(self):
        parser = build_parser()
        subparser_action = next(
            a for a in parser._actions
            if isinstance(a, type(parser._subparsers._group_actions[0])))
        commands = set(subparser_action.choices)
        assert {"headline", "compare", "fig5", "fig8", "fig9",
                "methodology", "pvt", "refresh-plan", "banking",
                "voltage", "optimize", "sensitivity"} <= commands

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestCommands:
    def test_headline(self, capsys):
        assert main(["headline"]) == 0
        out = capsys.readouterr().out
        assert "access time" in out
        assert "energy per bit" in out

    def test_headline_custom_size(self, capsys):
        assert main(["headline", "--kb", "256"]) == 0
        assert "256 kb" in capsys.readouterr().out

    def test_fig8(self, capsys):
        assert main(["fig8"]) == 0
        out = capsys.readouterr().out
        assert "localblock" in out
        assert "decode" in out

    def test_fig9(self, capsys):
        assert main(["fig9"]) == 0
        out = capsys.readouterr().out
        assert "activity" in out

    def test_fig5_small(self, capsys):
        assert main(["fig5", "--cycles", "20000"]) == 0
        out = capsys.readouterr().out
        assert "monoblock" in out

    def test_refresh_plan(self, capsys):
        assert main(["refresh-plan", "--granules", "64"]) == 0
        out = capsys.readouterr().out
        assert "saving" in out

    def test_banking(self, capsys):
        assert main(["banking", "--kb", "512"]) == 0
        out = capsys.readouterr().out
        assert "banks" in out

    def test_sensitivity(self, capsys):
        assert main(["sensitivity"]) == 0
        out = capsys.readouterr().out
        assert "static_power" in out
        assert "retention" in out

    def test_voltage(self, capsys):
        assert main(["voltage"]) == 0
        assert "vdd" in capsys.readouterr().out

    def test_optimize(self, capsys):
        assert main(["optimize"]) == 0
        out = capsys.readouterr().out
        assert "Pareto" in out
        assert "best for" in out

    def test_invalid_capacity_exits(self):
        with pytest.raises(SystemExit):
            main(["headline", "--kb", "-1"])
