"""Tests for the command-line interface."""

import json
import logging

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_all_commands_registered(self):
        parser = build_parser()
        subparser_action = next(
            a for a in parser._actions
            if isinstance(a, type(parser._subparsers._group_actions[0])))
        commands = set(subparser_action.choices)
        assert {"headline", "compare", "fig5", "fig8", "fig9",
                "methodology", "pvt", "refresh-plan", "banking",
                "voltage", "optimize", "sensitivity"} <= commands

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestCommands:
    def test_headline(self, capsys):
        assert main(["headline"]) == 0
        out = capsys.readouterr().out
        assert "access time" in out
        assert "energy per bit" in out

    def test_headline_custom_size(self, capsys):
        assert main(["headline", "--kb", "256"]) == 0
        assert "256 kb" in capsys.readouterr().out

    def test_fig8(self, capsys):
        assert main(["fig8"]) == 0
        out = capsys.readouterr().out
        assert "localblock" in out
        assert "decode" in out

    def test_fig9(self, capsys):
        assert main(["fig9"]) == 0
        out = capsys.readouterr().out
        assert "activity" in out

    def test_fig5_small(self, capsys):
        assert main(["fig5", "--cycles", "20000"]) == 0
        out = capsys.readouterr().out
        assert "monoblock" in out

    def test_refresh_plan(self, capsys):
        assert main(["refresh-plan", "--granules", "64"]) == 0
        out = capsys.readouterr().out
        assert "saving" in out

    def test_banking(self, capsys):
        assert main(["banking", "--kb", "512"]) == 0
        out = capsys.readouterr().out
        assert "banks" in out

    def test_sensitivity(self, capsys):
        assert main(["sensitivity"]) == 0
        out = capsys.readouterr().out
        assert "static_power" in out
        assert "retention" in out

    def test_voltage(self, capsys):
        assert main(["voltage"]) == 0
        assert "vdd" in capsys.readouterr().out

    def test_optimize(self, capsys):
        assert main(["optimize"]) == 0
        out = capsys.readouterr().out
        assert "Pareto" in out
        assert "best for" in out

    def test_invalid_capacity_exits(self):
        with pytest.raises(SystemExit):
            main(["headline", "--kb", "-1"])


class TestInstrumentation:
    def test_metrics_out_writes_run_report(self, tmp_path, capsys):
        out = tmp_path / "run.json"
        assert main(["fig5", "--cycles", "5000",
                     "--metrics-out", str(out)]) == 0
        report = json.loads(out.read_text())
        assert report["command"] == "fig5"
        assert report["spans"][0]["name"] == "fig5"
        simulate = report["spans"][0]["children"][0]
        assert simulate["name"] == "simulate"
        assert simulate["children"], "simulate must have component children"
        assert report["metrics"]["counters"]["refresh.stall_cycles"] >= 0
        assert "fingerprint" in report

    def test_profile_prints_span_tree(self, capsys):
        assert main(["fig5", "--cycles", "5000", "--profile"]) == 0
        err = capsys.readouterr().err
        assert "== spans ==" in err
        assert "simulate" in err
        assert "refresh.stall_cycles" in err

    def test_fingerprint_stable_across_runs(self, tmp_path):
        paths = [tmp_path / "a.json", tmp_path / "b.json"]
        for path in paths:
            main(["fig5", "--cycles", "5000", "--metrics-out", str(path)])
        fingerprints = [json.loads(p.read_text())["fingerprint"]
                        for p in paths]
        assert fingerprints[0] == fingerprints[1]

    def test_disabled_by_default_leaves_obs_off(self):
        from repro import obs
        main(["fig5", "--cycles", "5000"])
        assert not obs.is_enabled()
        assert obs.tracer().finished_roots() == []

    def test_headline_profile_shows_macro_spans(self, capsys):
        assert main(["headline", "--profile"]) == 0
        err = capsys.readouterr().err
        assert "macro.build" in err
        assert "macro.summary" in err

    def test_verbose_flag_enables_info_logging(self, capsys):
        logger = logging.getLogger("repro")
        before = list(logger.handlers)
        try:
            assert main(["fig5", "--cycles", "5000", "-v"]) == 0
            assert logger.level == logging.INFO
            err = capsys.readouterr().err
            assert "running command 'fig5'" in err
        finally:
            for handler in logger.handlers[:]:
                if handler not in before:
                    logger.removeHandler(handler)
            logger.setLevel(logging.NOTSET)
