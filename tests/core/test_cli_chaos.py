"""CLI tests for the resilience commands (mc, chaos) and --seed."""

import json

from repro.cli import build_parser, main


class TestSeedFlag:
    def test_seed_accepted_by_every_subcommand(self):
        parser = build_parser()
        subparser_action = next(
            a for a in parser._actions
            if isinstance(a, type(parser._subparsers._group_actions[0])))
        for command in subparser_action.choices:
            if command in ("lint", "audit"):
                extra = ["src"]
            elif command == "obs":  # nested family: seed rides on export
                extra = ["export", "report.json"]
            else:
                extra = []
            args = parser.parse_args([command, *extra, "--seed", "7"])
            assert args.seed == 7

    def test_seed_lands_in_run_report(self, tmp_path):
        report_path = tmp_path / "report.json"
        assert main(["fig5", "--cycles", "20000", "--seed", "11",
                     "--metrics-out", str(report_path)]) == 0
        report = json.loads(report_path.read_text())
        assert report["config"]["seed"] == 11

    def test_seed_changes_fig5_outcome_deterministically(self, capsys):
        def run(seed):
            assert main(["fig5", "--cycles", "20000",
                         "--seed", str(seed)]) == 0
            return capsys.readouterr().out
        assert run(1) == run(1)
        assert run(1) != run(2)


class TestChaosCommand:
    def test_chaos_runs_end_to_end(self, capsys):
        assert main(["chaos", "--cycles", "20000"]) == 0
        out = capsys.readouterr().out
        assert "fault plan" in out
        assert "degraded-mode" in out
        assert "data-loss events" in out
        assert "ladder recovered" in out
        assert "zero uncaught exceptions" in out

    def test_chaos_is_seeded(self, capsys):
        def run(seed):
            assert main(["chaos", "--cycles", "20000",
                         "--seed", str(seed)]) == 0
            return capsys.readouterr().out
        assert run(5) == run(5)


class TestMcCommand:
    def test_mc_completes_without_checkpoint(self, capsys):
        assert main(["mc", "--samples", "100"]) == 0
        out = capsys.readouterr().out
        assert "100/100 samples" in out
        assert "6-sigma worst" in out

    def test_mc_budget_then_resume(self, tmp_path, capsys):
        ckpt = str(tmp_path / "mc.json")
        assert main(["mc", "--samples", "200", "--checkpoint", ckpt,
                     "--max-seconds", "1e-9"]) == 0
        first = capsys.readouterr().out
        assert "stopped on max_seconds" in first
        assert main(["mc", "--samples", "200", "--checkpoint", ckpt,
                     "--resume"]) == 0
        resumed = capsys.readouterr().out
        assert "200/200 samples" in resumed
        # A completed run clears its checkpoint.
        assert not (tmp_path / "mc.json").exists()

    def test_mc_refuses_existing_checkpoint_without_resume(self, tmp_path,
                                                           capsys):
        ckpt = tmp_path / "mc.json"
        ckpt.write_text("{}")
        assert main(["mc", "--samples", "100",
                     "--checkpoint", str(ckpt)]) == 1
        assert "--resume" in capsys.readouterr().err

    def test_mc_globalbitline_runs_on_sparse_backend(self, tmp_path,
                                                     capsys):
        from repro import obs as obs_mod

        with obs_mod.instrumented() as registry:
            assert main(["mc", "--model", "globalbitline",
                         "--samples", "2"]) == 0
            counters = registry.snapshot()["counters"]
        out = capsys.readouterr().out
        assert "global-bitline read-signal Monte-Carlo: 2/2 samples" in out
        assert "6-sigma worst" in out
        # The default hierarchy sits above the auto threshold, so every
        # sample must have run the sparse path.
        assert counters["spice.sparse.auto.sparse"] == 2
        assert counters.get("spice.sparse.auto.dense", 0) == 0

    def test_mc_with_weak_cell_faults(self, capsys):
        assert main(["mc", "--samples", "100", "--faults",
                     "weak-cells"]) == 0
        out = capsys.readouterr().out
        assert "weak cells" in out
        assert "functional" in out
