"""End-to-end CLI tests for the telemetry family: repro obs export/diff,
--events-out, and the run-report sink error paths."""

import json

import pytest

from repro.cli import main
from repro.obs.export import validate_chrome_trace


@pytest.fixture
def run_report(tmp_path):
    """A real fig5 run report with events and time series captured."""
    path = tmp_path / "run.json"
    assert main(["fig5", "--cycles", "20000", "--seed", "3",
                 "--metrics-out", str(path)]) == 0
    return path


class TestEventsOut:
    def test_jsonl_sink_written(self, tmp_path):
        sink = tmp_path / "deep" / "events.jsonl"
        assert main(["chaos", "--cycles", "20000",
                     "--events-out", str(sink)]) == 0
        lines = sink.read_text().splitlines()
        assert lines  # chaos injects faults: events are guaranteed
        for line in lines:
            node = json.loads(line)
            assert "t" in node and "." in node["kind"]

    def test_unwritable_sink_is_one_line_error(self, tmp_path, capsys):
        blocker = tmp_path / "file"
        blocker.write_text("")
        assert main(["fig5", "--cycles", "20000",
                     "--events-out", str(blocker / "e.jsonl")]) == 1
        err = capsys.readouterr().err
        assert "cannot open event sink" in err
        assert "Traceback" not in err


class TestMetricsOut:
    def test_report_carries_schema2_sections(self, run_report):
        report = json.loads(run_report.read_text())
        assert report["schema"] == 2
        assert "events" in report and "timeseries" in report
        assert "refresh.busy_fraction" in report["timeseries"]

    def test_unwritable_report_is_one_line_error(self, tmp_path, capsys):
        blocker = tmp_path / "file"
        blocker.write_text("")
        assert main(["fig5", "--cycles", "20000",
                     "--metrics-out", str(blocker / "run.json")]) == 1
        err = capsys.readouterr().err
        assert "cannot write run report" in err
        assert "Traceback" not in err


class TestObsExport:
    def test_chrome_export_validates(self, run_report, capsys):
        assert main(["obs", "export", str(run_report)]) == 0
        trace = json.loads(capsys.readouterr().out)
        assert validate_chrome_trace(trace) == []
        assert any(e.get("ph") == "X" for e in trace["traceEvents"])

    def test_export_to_file_creates_parents(self, run_report, tmp_path):
        out = tmp_path / "nested" / "trace.json"
        assert main(["obs", "export", str(run_report),
                     "--out", str(out)]) == 0
        assert validate_chrome_trace(json.loads(out.read_text())) == []

    @pytest.mark.parametrize("fmt", ["csv", "prom"])
    def test_other_formats_render(self, run_report, fmt, capsys):
        assert main(["obs", "export", str(run_report),
                     "--format", fmt]) == 0
        assert capsys.readouterr().out

    def test_missing_report_is_one_line_error(self, tmp_path, capsys):
        assert main(["obs", "export", str(tmp_path / "absent.json")]) == 1
        err = capsys.readouterr().err
        assert err.startswith("repro obs export:")
        assert "Traceback" not in err


class TestObsDiff:
    def test_identical_reports_diff_clean(self, run_report, capsys):
        assert main(["obs", "diff", str(run_report), str(run_report)]) == 0
        out = capsys.readouterr().out
        assert "0 regression(s)" in out

    def test_injected_regression_exits_nonzero(self, run_report, tmp_path,
                                               capsys):
        report = json.loads(run_report.read_text())
        report["total_duration_s"] *= 2.0  # lower-better metric up 100%
        worse = tmp_path / "worse.json"
        worse.write_text(json.dumps(report))
        assert main(["obs", "diff", str(run_report), str(worse)]) == 1
        out = capsys.readouterr().out
        assert "REGRESSION" in out

    def test_works_on_benchmark_shape(self, tmp_path):
        before = tmp_path / "BENCH_solver.json"
        after = tmp_path / "new.json"
        before.write_text(json.dumps({"steps_per_sec": 100.0}))
        after.write_text(json.dumps({"steps_per_sec": 60.0}))
        assert main(["obs", "diff", str(before), str(after)]) == 1
        after.write_text(json.dumps({"steps_per_sec": 110.0}))
        assert main(["obs", "diff", str(before), str(after)]) == 0

    def test_threshold_flag_gates(self, tmp_path, capsys):
        before = tmp_path / "a.json"
        after = tmp_path / "b.json"
        before.write_text(json.dumps({"steps_per_sec": 100.0}))
        after.write_text(json.dumps({"steps_per_sec": 60.0}))
        assert main(["obs", "diff", str(before), str(after),
                     "--threshold", "0.5"]) == 0

    def test_json_format(self, run_report, capsys):
        assert main(["obs", "diff", str(run_report), str(run_report),
                     "--format", "json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["regressions"] == 0

    def test_missing_report_is_one_line_error(self, run_report, tmp_path,
                                              capsys):
        assert main(["obs", "diff", str(run_report),
                     str(tmp_path / "absent.json")]) == 1
        err = capsys.readouterr().err
        assert err.startswith("repro obs diff:")
