"""Tests for the DRAM-vs-SRAM comparison harness."""

import pytest

from repro.core import SramDramComparison
from repro.errors import ConfigurationError
from repro.units import kb, Mb


@pytest.fixture(scope="module")
def comparison():
    return SramDramComparison(sizes=(128 * kb, 2 * Mb),
                              retention_override=1e-3)


class TestRows:
    def test_row_metadata(self, comparison):
        rows = comparison.area()
        assert [r.total_bits for r in rows] == [128 * kb, 2 * Mb]
        assert rows[0].size_label == "128 kb"
        assert rows[1].size_label == "2 Mb"

    def test_ratio_definition(self, comparison):
        row = comparison.area()[0]
        assert row.ratio == pytest.approx(row.sram / row.dram)

    def test_zero_dram_ratio_rejected(self):
        from repro.core.compare import ComparisonRow
        row = ComparisonRow(total_bits=1024, sram=1.0, dram=0.0)
        with pytest.raises(ConfigurationError):
            row.ratio

    def test_needs_sizes(self):
        with pytest.raises(ConfigurationError):
            SramDramComparison(sizes=())


class TestFigures:
    def test_fig7a_access_similar(self, comparison):
        for row in comparison.access_time():
            assert 0.7 < row.ratio < 1.5

    def test_fig7b_read_similar(self, comparison):
        for row in comparison.read_energy():
            assert 0.7 < row.ratio < 1.6

    def test_fig7b_write_dram_wins_large(self, comparison):
        rows = comparison.write_energy()
        assert rows[-1].ratio > 1.5

    def test_fig7c_static_factor(self, comparison):
        for row in comparison.static_power():
            assert row.ratio > 5.0

    def test_fig7d_area_factor(self, comparison):
        for row in comparison.area():
            assert 2.0 < row.ratio < 3.5

    def test_fig8_breakdown_keys(self, comparison):
        repartition = comparison.energy_repartition()
        assert set(repartition) == {"read", "write"}
        for access in repartition.values():
            assert set(access) == {"decode", "cell", "localblock",
                                   "global_path", "io"}

    def test_fig9_point(self, comparison):
        row = comparison.total_power(activity=0.1, total_bits=2 * Mb)
        assert row.sram > 0 and row.dram > 0
        assert row.ratio > 1.0  # DRAM wins with both static and write

    def test_fig9_curves_shape(self, comparison):
        curves = comparison.total_power_curves(activities=(0.0, 0.5, 1.0))
        for rows in curves.values():
            dram_totals = [r.dram for r in rows]
            assert dram_totals == sorted(dram_totals)

    def test_fig9_activity_validated(self, comparison):
        with pytest.raises(ConfigurationError):
            comparison.total_power(activity=1.2, total_bits=128 * kb)

    def test_fig9_clock_validated(self, comparison):
        with pytest.raises(ConfigurationError):
            comparison.total_power(activity=0.5, total_bits=128 * kb,
                                   clock_frequency=0.0)


class TestRetentionResolution:
    def test_override_respected(self, comparison):
        macro = comparison.dram_macro(128 * kb)
        assert macro.static_power_model.resolved_retention() == 1e-3

    def test_auto_resolution_cached(self):
        auto = SramDramComparison(sizes=(128 * kb,))
        first = auto._resolved_retention()
        second = auto._resolved_retention()
        assert first == second
        assert 1e-4 < first < 1e-2
