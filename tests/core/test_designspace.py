"""Tests for design-space sweeps and ablations."""

import pytest

from repro.core import (
    ablate_architecture,
    sweep_cells_per_lbl,
    sweep_retention,
    sweep_sizes,
)
from repro.errors import ConfigurationError
from repro.units import kb


class TestLblSweep:
    def test_signal_monotone_decreasing(self):
        rows = sweep_cells_per_lbl(values=(8, 16, 32, 64))
        signals = [r.read_signal for r in rows]
        assert signals == sorted(signals, reverse=True)

    def test_area_monotone_decreasing(self):
        rows = sweep_cells_per_lbl(values=(8, 16, 32, 64))
        areas = [r.area for r in rows]
        assert areas == sorted(areas, reverse=True)

    def test_doubling_energy_marginal(self):
        """Paper Sec. IV: 16 -> 32 cells/LBL is 'marginal' on power."""
        rows = {r.cells_per_lbl: r for r in sweep_cells_per_lbl(
            values=(16, 32))}
        delta = abs(rows[32].read_energy - rows[16].read_energy)
        assert delta / rows[16].read_energy < 0.15

    def test_infeasible_lengths_skipped(self):
        rows = sweep_cells_per_lbl(values=(8, 4096))
        assert [r.cells_per_lbl for r in rows] == [8]

    def test_all_infeasible_raises(self):
        with pytest.raises(ConfigurationError):
            sweep_cells_per_lbl(values=(4096,))


class TestRetentionSweep:
    def test_power_inverse_in_retention(self):
        rows = sweep_retention(values=(1e-4, 1e-3, 1e-2))
        assert rows[0].static_power == pytest.approx(
            10 * rows[1].static_power, rel=0.01)
        assert rows[1].static_power == pytest.approx(
            10 * rows[2].static_power, rel=0.01)

    def test_refresh_rate_reported(self):
        rows = sweep_retention(values=(1e-3,))
        assert rows[0].refresh_rows_per_second == pytest.approx(
            4096 / 1e-3)

    def test_rejects_nonpositive(self):
        with pytest.raises(ConfigurationError):
            sweep_retention(values=(0.0,))


class TestSizeSweep:
    def test_everything_monotone(self):
        rows = sweep_sizes(sizes=(128 * kb, 512 * kb, 2048 * kb))
        for metric in ("access_time", "read_energy", "write_energy",
                       "area", "static_power"):
            values = [getattr(r, metric) for r in rows]
            assert values == sorted(values), metric


class TestAblations:
    @pytest.fixture(scope="class")
    def results(self):
        return {r.feature: r for r in ablate_architecture()}

    def test_all_features_present(self, results):
        assert set(results) == {
            "local_restore", "local_restore_latency", "low_swing_gbl",
            "fine_granularity_signal",
        }

    def test_local_restore_saves_refresh_energy(self, results):
        assert results["local_restore"].penalty_factor > 1.1

    def test_local_restore_hides_latency(self, results):
        assert results["local_restore_latency"].penalty_factor > 1.2

    def test_low_swing_gbl_saves_energy(self, results):
        assert results["low_swing_gbl"].penalty_factor > 1.1

    def test_monolithic_bitline_kills_signal(self, results):
        assert results["fine_granularity_signal"].penalty_factor < 0.1

    def test_penalty_requires_positive_baseline(self):
        from repro.core.designspace import AblationResult
        bad = AblationResult(feature="x", proposed_value=0.0,
                             ablated_value=1.0, metric="m")
        with pytest.raises(ConfigurationError):
            bad.penalty_factor
