"""Tests for the fast-DRAM design factory."""

import pytest

from repro.core import FastDramDesign
from repro.errors import ConfigurationError
from repro.units import kb, ns, pJ


class TestFactory:
    def test_default_is_dram_technology(self):
        design = FastDramDesign()
        assert design.technology == "dram"
        assert design.resolved_cells_per_lbl() == 32

    def test_scratchpad_uses_16_cells(self):
        design = FastDramDesign(technology="scratchpad")
        assert design.resolved_cells_per_lbl() == 16
        assert design.cell().capacitor.capacitance == pytest.approx(11e-15)

    def test_unknown_technology_rejected(self):
        with pytest.raises(ConfigurationError):
            FastDramDesign(technology="edram")

    def test_explicit_cells_per_lbl(self):
        design = FastDramDesign(cells_per_lbl=64)
        assert design.resolved_cells_per_lbl() == 64

    def test_too_few_cells_rejected(self):
        with pytest.raises(ConfigurationError):
            FastDramDesign(cells_per_lbl=1).resolved_cells_per_lbl()

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ConfigurationError):
            FastDramDesign().build(0)


class TestBuiltMacro:
    def test_dynamic_cell(self, dram_macro_128kb):
        assert dram_macro_128kb.organization.cell.is_dynamic

    def test_refresh_views(self, dram_macro_128kb):
        assert dram_macro_128kb.refresh_row_energy() > 0
        assert 0 < dram_macro_128kb.refresh_slot_time() < 5 * ns

    def test_retention_statistics_available(self, dram_macro_128kb):
        stats = dram_macro_128kb.retention_statistics(count=300)
        assert stats.worst_case > 0

    def test_headline_figures(self, dram_macro_128kb):
        """The abstract's numbers, as bands."""
        assert dram_macro_128kb.access_time() < 1.9 * ns
        assert dram_macro_128kb.energy_per_bit() < 0.2 * pJ

    def test_scratchpad_macro_buildable(self):
        macro = FastDramDesign(technology="scratchpad").build(
            128 * kb, retention_override=1e-4)
        assert macro.organization.cells_per_lbl == 16
        assert macro.access_time() < 2 * ns

    def test_dram_local_sa_larger_than_sram(self, dram_macro_128kb,
                                            sram_macro_128kb):
        """Paper Sec. IV: more local-SA power for the DRAM."""
        assert (dram_macro_128kb.local_sa.energy_per_operation()
                > sram_macro_128kb.local_sa.energy_per_operation())
