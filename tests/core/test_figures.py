"""Tests for ASCII figure rendering."""

import pytest

from repro.core import ascii_chart, comparison_chart
from repro.core.compare import ComparisonRow
from repro.errors import ConfigurationError


class TestAsciiChart:
    def test_basic_render(self):
        chart = ascii_chart({"a": [1, 2, 3]}, [0, 1, 2])
        lines = chart.splitlines()
        assert any("*" in line for line in lines)
        assert "a" in lines[-1]

    def test_dimensions(self):
        chart = ascii_chart({"a": [1, 2]}, [0, 1], width=30, height=8)
        body = [l for l in chart.splitlines() if l.startswith("|")]
        assert len(body) == 8
        assert all(len(line) <= 31 for line in body)

    def test_extremes_hit_borders(self):
        chart = ascii_chart({"a": [0.0, 10.0]}, [0, 1], width=20, height=6)
        body = [l for l in chart.splitlines() if l.startswith("|")]
        assert "*" in body[0]    # max at the top row
        assert "*" in body[-1]   # min at the bottom row

    def test_two_series_two_markers(self):
        chart = ascii_chart({"a": [1, 2], "b": [2, 1]}, [0, 1])
        assert "*" in chart and "o" in chart

    def test_log_axis(self):
        chart = ascii_chart({"a": [1, 10, 100]}, [1, 2, 3], log_y=True)
        body = [l for l in chart.splitlines() if l.startswith("|")]
        rows = [i for i, line in enumerate(body) if "*" in line]
        # Log spacing: equidistant rows.
        assert rows[1] - rows[0] == pytest.approx(rows[2] - rows[1], abs=1)

    def test_log_axis_rejects_nonpositive(self):
        with pytest.raises(ConfigurationError):
            ascii_chart({"a": [0.0, 1.0]}, [1, 2], log_y=True)

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ConfigurationError):
            ascii_chart({"a": [1, 2, 3]}, [0, 1])

    def test_too_small_rejected(self):
        with pytest.raises(ConfigurationError):
            ascii_chart({"a": [1, 2]}, [0, 1], width=5)

    def test_single_point_rejected(self):
        with pytest.raises(ConfigurationError):
            ascii_chart({"a": [1]}, [0])


class TestComparisonChart:
    def test_renders_rows(self):
        rows = [ComparisonRow(total_bits=131072, sram=2.0, dram=1.0),
                ComparisonRow(total_bits=2097152, sram=8.0, dram=3.0)]
        chart = comparison_chart(rows, "area")
        assert "SRAM" in chart and "DRAM" in chart
        assert "area" in chart

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            comparison_chart([], "x")
