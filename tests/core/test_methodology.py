"""Tests for the paper Fig. 6 methodology flow.

The circuit-simulation step makes this the slowest test module; the
full flow is run once (module scope) and inspected by every test.
"""

import pytest

from repro.core import MethodologyFlow
from repro.units import kb


@pytest.fixture(scope="module")
def report():
    return MethodologyFlow(total_bits=128 * kb).run()


class TestStep1:
    def test_scratchpad_macro_built(self, report):
        org = report.scratchpad_macro.organization
        assert org.cells_per_lbl == 16
        assert org.cell.name == "dram1t1c-cmos-gate"

    def test_both_data_values_simulated(self, report):
        stored = sorted(w.stored_value for w in report.scratchpad_waveforms)
        assert stored == [0, 1]

    def test_circuit_restores_correctly(self, report):
        assert all(w.restored_correctly for w in report.scratchpad_waveforms)

    def test_read0_produces_gbl_swing(self, report):
        read0 = next(w for w in report.scratchpad_waveforms
                     if w.stored_value == 0)
        assert 0.05 < read0.gbl_swing < 0.15


class TestStep2:
    def test_doubling_holds(self, report):
        """Paper Sec. III: 'it is possible to double this number of
        cells, from 16 to 32 cells per bitline' at similar timing."""
        assert report.doubling_holds
        assert 0.75 < report.timing_ratio < 1.25

    def test_dram_macro_uses_32_cells(self, report):
        assert report.dram_macro.organization.cells_per_lbl == 32


class TestStep3:
    def test_sweep_covers_paper_sizes(self, report):
        sizes = [row.total_bits for row in report.size_sweep]
        assert sizes[0] == 128 * kb
        assert sizes[-1] == 2048 * kb

    def test_sweep_monotone_area(self, report):
        areas = [row.area for row in report.size_sweep]
        assert areas == sorted(areas)


class TestFastPath:
    def test_flow_without_circuits(self):
        flow = MethodologyFlow(total_bits=128 * kb, simulate_circuits=False)
        macro, waveforms = flow.step1_scratchpad()
        assert waveforms == []
        assert macro.organization.cells_per_lbl == 16
