"""Tests for the design-space optimiser."""

import pytest

from repro.core import DesignOptimizer
from repro.core.optimizer import DesignCandidate
from repro.errors import ConfigurationError
from repro.units import ns


@pytest.fixture(scope="module")
def result():
    return DesignOptimizer(max_access_time=1.3 * ns).run()


class TestSearch:
    def test_constraint_respected(self, result):
        for candidate in result.candidates:
            assert candidate.access_time <= 1.3 * ns

    def test_front_is_nondominated(self, result):
        for a in result.pareto_front:
            assert not any(b.dominates(a) for b in result.candidates)

    def test_front_within_candidates(self, result):
        for candidate in result.pareto_front:
            assert candidate in result.candidates

    def test_best_per_objective_is_minimum(self, result):
        for objective, winner in result.best.items():
            values = [c.metric(objective) for c in result.candidates]
            assert winner.metric(objective) == min(values)

    def test_bests_on_front_for_front_axes(self, result):
        """Single-objective winners on the Pareto axes lie on the front."""
        for objective in ("access_time", "total_power", "area"):
            assert result.best[objective] in result.pareto_front

    def test_paper_point_is_reasonable(self, result):
        """The paper's (32 cells, 32 bits, 1.2 V) choice must be feasible
        and near the front: no candidate dominates it by a wide margin."""
        paper = next(c for c in result.candidates
                     if c.cells_per_lbl == 32 and c.word_bits == 32
                     and c.vdd == pytest.approx(1.2))
        for other in result.candidates:
            if other.dominates(paper):
                assert other.area > 0.8 * paper.area
                assert other.total_power > 0.8 * paper.total_power


class TestConstraints:
    def test_impossible_constraint_raises(self):
        with pytest.raises(ConfigurationError, match="no design"):
            DesignOptimizer(max_access_time=0.01 * ns).run()

    def test_tighter_constraint_fewer_candidates(self):
        loose = DesignOptimizer(max_access_time=None).run()
        tight = DesignOptimizer(max_access_time=1.1 * ns).run()
        assert len(tight.candidates) < len(loose.candidates)

    def test_unknown_objective_rejected(self, result):
        with pytest.raises(ConfigurationError):
            result.candidates[0].metric("beauty")

    def test_activity_validated(self):
        with pytest.raises(ConfigurationError):
            DesignOptimizer(activity=2.0)


class TestDominance:
    def _candidate(self, t, p, a):
        return DesignCandidate(
            cells_per_lbl=32, word_bits=32, vdd=1.2, access_time=t,
            read_energy=1.0, write_energy=1.0, energy_per_bit=1.0,
            area=a, static_power=0.1, total_power=p)

    def test_strict_dominance(self):
        better = self._candidate(1.0, 1.0, 1.0)
        worse = self._candidate(2.0, 2.0, 2.0)
        assert better.dominates(worse)
        assert not worse.dominates(better)

    def test_incomparable_points(self):
        fast_big = self._candidate(1.0, 1.0, 3.0)
        slow_small = self._candidate(3.0, 1.0, 1.0)
        assert not fast_big.dominates(slow_small)
        assert not slow_small.dominates(fast_big)

    def test_equal_points_do_not_dominate(self):
        a = self._candidate(1.0, 1.0, 1.0)
        b = self._candidate(1.0, 1.0, 1.0)
        assert not a.dominates(b)
