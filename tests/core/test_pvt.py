"""Tests for PVT (corner/temperature) analysis."""

import pytest

from repro.core import PvtAnalysis, hot_retention_derating
from repro.errors import ConfigurationError
from repro.tech import Corner


@pytest.fixture(scope="module")
def dram_points():
    analysis = PvtAnalysis(retention_samples=300)
    return {p.label: p
            for p in analysis.sweep(temperatures=(300.0, 358.0))}


class TestCornerOrdering:
    def test_ss_slowest_ff_fastest(self, dram_points):
        assert (dram_points["SS@300K"].access_time
                > dram_points["TT@300K"].access_time
                > dram_points["FF@300K"].access_time)

    def test_hot_is_slower(self, dram_points):
        assert (dram_points["TT@358K"].access_time
                > dram_points["TT@300K"].access_time)

    def test_energy_roughly_corner_independent(self, dram_points):
        """Dynamic energy is CV^2: corners move delay, not charge."""
        assert dram_points["SS@300K"].read_energy == pytest.approx(
            dram_points["FF@300K"].read_energy, rel=0.05)


class TestRetentionCollapse:
    def test_hot_retention_much_shorter(self, dram_points):
        cold = dram_points["TT@300K"].worst_retention
        hot = dram_points["TT@358K"].worst_retention
        assert hot < 0.1 * cold

    def test_hot_refresh_power_explodes(self, dram_points):
        cold = dram_points["TT@300K"].static_power
        hot = dram_points["TT@358K"].static_power
        assert hot > 10 * cold

    def test_derating_curve_monotone(self):
        points = hot_retention_derating(samples=300)
        retentions = [p.worst_retention for p in points]
        assert retentions == sorted(retentions, reverse=True)


class TestSramVariant:
    def test_sram_static_grows_hot(self):
        analysis = PvtAnalysis(technology="sram")
        cold = analysis.evaluate(Corner.TT, 300.0)
        hot = analysis.evaluate(Corner.TT, 358.0)
        assert hot.static_power > 2 * cold.static_power
        assert cold.worst_retention is None

    def test_sram_leakage_worst_at_ff(self):
        analysis = PvtAnalysis(technology="sram")
        ff = analysis.evaluate(Corner.FF, 300.0)
        ss = analysis.evaluate(Corner.SS, 300.0)
        assert ff.static_power > ss.static_power


class TestValidation:
    def test_unknown_technology(self):
        with pytest.raises(ConfigurationError):
            PvtAnalysis(technology="flash")

    def test_nonpositive_bits(self):
        with pytest.raises(ConfigurationError):
            PvtAnalysis(total_bits=0)

    def test_point_label(self, dram_points):
        assert "TT@300K" in dram_points
