"""Tests for report formatting."""

import pytest

from repro.core import format_table
from repro.errors import ConfigurationError


class TestFormatTable:
    def test_alignment(self):
        text = format_table(["name", "v"], [["a", 1], ["long-name", 22]])
        lines = text.splitlines()
        assert lines[0].startswith("name")
        assert lines[1].startswith("----")
        assert len(lines) == 4

    def test_floats_compact(self):
        text = format_table(["x"], [[1.23456789]])
        assert "1.235" in text

    def test_empty_rows_ok(self):
        text = format_table(["a", "b"], [])
        assert len(text.splitlines()) == 2

    def test_mismatched_row_rejected(self):
        with pytest.raises(ConfigurationError):
            format_table(["a", "b"], [[1]])

    def test_no_trailing_whitespace(self):
        text = format_table(["a", "bbbb"], [["x", "y"]])
        assert all(line == line.rstrip() for line in text.splitlines())
