"""Tests for the sensitivity analysis."""

import pytest

from repro.core import SensitivityAnalysis
from repro.errors import ConfigurationError


@pytest.fixture(scope="module")
def analysis():
    return SensitivityAnalysis()


class TestKnownSensitivities:
    def test_static_power_inverse_in_retention(self, analysis):
        """P_refresh = N * E / t_ret: exact -1 slope."""
        s = analysis.retention_sensitivity("static_power")
        assert s.value == pytest.approx(-1.0, abs=0.05)

    def test_static_power_linear_in_capacity(self, analysis):
        s = analysis.capacity_sensitivity("static_power")
        assert s.value == pytest.approx(1.0, abs=0.05)

    def test_dynamic_energy_retention_independent(self, analysis):
        s = analysis.retention_sensitivity("read_energy")
        assert s.value == pytest.approx(0.0, abs=1e-6)

    def test_area_shrinks_with_lbl_length(self, analysis):
        """Longer LBLs amortise the local-SA strips."""
        s = analysis.lbl_length_sensitivity("area")
        assert s.value < 0

    def test_area_grows_with_capacity(self, analysis):
        s = analysis.capacity_sensitivity("area")
        assert 0.6 < s.value <= 1.05

    def test_access_time_sublinear_in_capacity(self, analysis):
        """The hierarchical organization's entire point."""
        s = analysis.capacity_sensitivity("access_time")
        assert 0.0 < s.value < 0.3


class TestReport:
    def test_full_report_covers_grid(self, analysis):
        report = analysis.full_report()
        metrics = {s.metric for s in report}
        parameters = {s.parameter for s in report}
        assert len(report) == len(metrics) * len(parameters)
        assert "static_power" in metrics
        assert "retention" in parameters

    def test_unknown_metric_rejected(self, analysis):
        with pytest.raises(ConfigurationError):
            analysis.retention_sensitivity("speed_of_light")

    def test_step_validated(self):
        with pytest.raises(ConfigurationError):
            SensitivityAnalysis(step=0.9)
