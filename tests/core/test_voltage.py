"""Tests for supply-voltage scaling (boost mode)."""

import pytest

from repro.core import build_at_supply, scaled_supply_design, voltage_sweep
from repro.core.fastdram import FastDramDesign
from repro.errors import ConfigurationError


@pytest.fixture(scope="module")
def sweep():
    return voltage_sweep(supplies=(0.9, 1.0, 1.2, 1.3))


class TestSweepShape:
    def test_speed_improves_with_supply(self, sweep):
        times = [p.access_time for p in sweep]
        assert times == sorted(times, reverse=True)

    def test_energy_grows_with_supply(self, sweep):
        energies = [p.read_energy for p in sweep]
        assert energies == sorted(energies)

    def test_energy_roughly_quadratic(self, sweep):
        low = next(p for p in sweep if p.vdd == 0.9)
        high = next(p for p in sweep if p.vdd == 1.3)
        ratio = high.read_energy / low.read_energy
        # Pure CV^2 would be (1.3/0.9)^2 = 2.09; fixed-rail pieces (the
        # low-swing GBL, the 1.7 V WL) damp it.
        assert 1.15 < ratio < 2.1

    def test_boost_mode_band(self, sweep):
        """At +10 % supply the macro gains ~5-15 % speed — the boost-mode
        character of the baseline [10]."""
        nominal = next(p for p in sweep if p.vdd == 1.2)
        boost = next(p for p in sweep if p.vdd == 1.3)
        gain = nominal.access_time / boost.access_time
        assert 1.02 < gain < 1.25


class TestGuards:
    def test_ceiling_enforced(self):
        with pytest.raises(ConfigurationError):
            scaled_supply_design(FastDramDesign(), vdd=2.0)

    def test_floor_enforced(self):
        with pytest.raises(ConfigurationError):
            scaled_supply_design(FastDramDesign(), vdd=0.5)

    def test_macro_buildable_at_boost(self):
        macro = build_at_supply(1.3)
        assert macro.organization.node.vdd == pytest.approx(1.3)

    def test_precharge_tracks_supply(self):
        macro = build_at_supply(1.0)
        assert macro.cell_design.bitline_precharge == pytest.approx(0.8)
