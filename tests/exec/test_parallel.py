"""The parallel executor's determinism contract, exercised end to end.

Every test here compares a parallel run against the serial harness (or
against the executor's own ``jobs=1`` delegation) because the contract
is *bit-identity*, not statistical similarity.  Worker callables live
at module level so they pickle across the process boundary.
"""

import os

import numpy as np
import pytest

from repro import obs
from repro.checkpoint import Checkpoint, RunBudget, run_sweep
from repro.errors import ConfigurationError, SimulationError
from repro.exec import run_parallel_sweep
from repro.variability.montecarlo import (
    run_monte_carlo,
    run_monte_carlo_resumable,
)

# -- picklable work functions (module-level by necessity) --------------------


def square(value):
    return value * value


def flaky(value):
    if value == 7:
        raise SimulationError("sample diverged")
    return value * value


def crashy(value):
    if value == 11:
        os._exit(3)  # simulate a segfaulting worker
    return value * value


def counting(value):
    obs.metrics().counter("test.work_items").inc()
    return value + 1


def emitting(value):
    obs.event("test.tick", key=value)
    obs.timeseries().series("test.values").sample(float(value), float(value))
    return value


def must_not_run(value):  # resumed items must come from the checkpoint
    raise AssertionError("evaluated an already-checkpointed item")


def mc_model(rng):
    return float(rng.normal(loc=1.0, scale=0.1))


def mc_flaky_model(rng):
    value = float(rng.normal())
    if value > 1.2:  # deterministic per seed stream
        raise SimulationError("tail sample rejected")
    return value


def items_of(fn, count=20):
    return [(f"k{i}", fn, (i,)) for i in range(count)]


# -- ordering and determinism ------------------------------------------------


class TestDeterminism:
    def test_parallel_matches_serial_results(self):
        serial = run_parallel_sweep(items_of(square), jobs=1)
        parallel = run_parallel_sweep(items_of(square), jobs=2)
        assert parallel.results == serial.results
        assert parallel.failures == serial.failures == ()
        assert parallel.completed == serial.completed == 20

    def test_result_order_is_item_order(self):
        outcome = run_parallel_sweep(items_of(square), jobs=3)
        assert list(outcome.results) == [f"k{i}" for i in range(20)]

    def test_chunk_size_never_changes_results(self):
        one = run_parallel_sweep(items_of(square), jobs=2, chunk_size=1)
        big = run_parallel_sweep(items_of(square), jobs=2, chunk_size=16)
        assert one.results == big.results

    def test_jobs_one_is_the_serial_harness(self):
        import functools
        thunks = [(key, functools.partial(fn, *args))
                  for key, fn, args in items_of(square)]
        assert (run_parallel_sweep(items_of(square), jobs=1).results
                == run_sweep(thunks).results)


# -- failure isolation -------------------------------------------------------


class TestFailureIsolation:
    def test_repro_error_is_a_recorded_failure(self):
        outcome = run_parallel_sweep(items_of(flaky), jobs=2)
        assert outcome.failures == ("k7",)
        assert "k7" not in outcome.results
        assert outcome.completed == 19 and outcome.attempted == 20

    def test_worker_crash_costs_one_sample(self):
        outcome = run_parallel_sweep(items_of(crashy), jobs=2)
        assert outcome.failures == ("k11",)
        assert outcome.results["k10"] == 100
        assert outcome.results["k12"] == 144
        assert outcome.completed == 19

    def test_crash_increments_counter_when_instrumented(self):
        with obs.instrumented() as registry:
            run_parallel_sweep(items_of(crashy), jobs=2)
            snapshot = registry.snapshot()
        assert snapshot["counters"]["sweep.worker_crashes"] == 1

    def test_non_repro_error_reraises_in_parent(self):
        items = [("k0", square, (1,)),
                 ("k1", int, ("not-a-number",))]
        with pytest.raises(ValueError):
            run_parallel_sweep(items, jobs=2)

    def test_max_failures_budget_stops_the_sweep(self):
        outcome = run_parallel_sweep(
            items_of(flaky), jobs=2, chunk_size=1,
            budget=RunBudget(max_failures=1))
        assert outcome.exhausted == "max_failures"
        assert outcome.failures == ("k7",)


# -- checkpointing -----------------------------------------------------------


class TestCheckpointResume:
    def test_resume_skips_completed_items(self, tmp_path):
        ckpt = Checkpoint(tmp_path / "sweep.json", "fp-exec")
        first = run_parallel_sweep(items_of(square), jobs=2, checkpoint=ckpt)
        # Re-running must read every value back rather than re-evaluate.
        second = run_parallel_sweep(items_of(must_not_run), jobs=2,
                                    checkpoint=ckpt)
        assert second.results == first.results

    def test_parallel_checkpoint_equals_serial_checkpoint(self, tmp_path):
        serial = Checkpoint(tmp_path / "serial.json", "fp-eq")
        parallel = Checkpoint(tmp_path / "parallel.json", "fp-eq")
        run_parallel_sweep(items_of(square), jobs=1, checkpoint=serial)
        run_parallel_sweep(items_of(square), jobs=3, checkpoint=parallel)
        assert serial.load() == parallel.load()

    def test_failures_are_not_checkpointed(self, tmp_path):
        ckpt = Checkpoint(tmp_path / "flaky.json", "fp-flaky")
        run_parallel_sweep(items_of(flaky), jobs=2, checkpoint=ckpt)
        assert "k7" not in ckpt.load()


# -- worker metrics ----------------------------------------------------------


class TestMetricsMerge:
    def test_worker_counters_fold_into_parent(self):
        with obs.instrumented() as registry:
            run_parallel_sweep(items_of(counting), jobs=2)
            snapshot = registry.snapshot()
        assert snapshot["counters"]["test.work_items"] == 20

    def test_disabled_instrumentation_ships_no_snapshots(self):
        outcome = run_parallel_sweep(items_of(counting), jobs=2)
        assert outcome.completed == 20  # NullRegistry absorbed the incs


class TestTelemetryForwarding:
    def test_worker_events_fold_into_parent_in_item_order(self):
        with obs.instrumented():
            run_parallel_sweep(items_of(emitting), jobs=2, chunk_size=3)
            events = obs.events().events()
        # Events arrive in submission order regardless of which worker
        # finished first — the deterministic ordered merge.
        assert [e.payload["key"] for e in events] == list(range(20))
        assert all(e.kind == "test.tick" for e in events)

    def test_parallel_event_order_matches_serial(self):
        def payloads(jobs):
            with obs.instrumented():
                run_parallel_sweep(items_of(emitting), jobs=jobs)
                return [(e.kind, e.payload) for e in obs.events().events()]
        assert payloads(3) == payloads(1)

    def test_worker_series_merge_exactly(self):
        with obs.instrumented():
            run_parallel_sweep(items_of(emitting), jobs=2, chunk_size=4)
            series = obs.timeseries().series("test.values")
            assert series.count == 20
            assert series.sum == sum(range(20))
            assert series.min == 0.0
            assert series.max == 19.0

    def test_crash_emits_event_in_parent(self):
        with obs.instrumented():
            run_parallel_sweep(items_of(crashy), jobs=2)
            kinds = obs.events().kinds()
        assert kinds.get("sweep.worker_crash") == 1


class FakeProgress:
    def __init__(self):
        self.restored = 0
        self.calls = []

    def note_restored(self, count):
        self.restored += count

    def advance(self, completed=0, failed=0):
        self.calls.append((completed, failed))


class TestProgressReporting:
    def test_one_advance_per_item(self):
        progress = FakeProgress()
        run_parallel_sweep(items_of(square), jobs=2, progress=progress)
        assert progress.calls == [(1, 0)] * 20

    def test_failures_reported(self):
        progress = FakeProgress()
        run_parallel_sweep(items_of(flaky), jobs=2, progress=progress)
        assert progress.calls.count((0, 1)) == 1
        assert progress.calls.count((1, 0)) == 19

    def test_checkpoint_restores_noted(self, tmp_path):
        ckpt = Checkpoint(tmp_path / "sweep.json", "fp-progress")
        run_parallel_sweep(items_of(square), jobs=2, checkpoint=ckpt)
        progress = FakeProgress()
        run_parallel_sweep(items_of(must_not_run), jobs=2, checkpoint=ckpt,
                           progress=progress)
        assert progress.restored == 20
        assert progress.calls == []


# -- validation --------------------------------------------------------------


class TestValidation:
    def test_duplicate_keys_rejected(self):
        items = [("dup", square, (1,)), ("dup", square, (2,))]
        with pytest.raises(ConfigurationError):
            run_parallel_sweep(items, jobs=2)

    def test_bad_jobs_rejected(self):
        with pytest.raises(ConfigurationError):
            run_parallel_sweep(items_of(square), jobs=0)

    def test_bad_chunk_size_rejected(self):
        with pytest.raises(ConfigurationError):
            run_parallel_sweep(items_of(square), jobs=2, chunk_size=0)


# -- Monte-Carlo integration -------------------------------------------------


class TestMonteCarloParallel:
    def test_samples_bit_identical_across_jobs(self):
        serial = run_monte_carlo(mc_model, 32, seed=9)
        parallel = run_monte_carlo(mc_model, 32, seed=9, jobs=2)
        assert np.array_equal(serial.samples, parallel.samples)

    def test_resumable_parallel_matches_serial(self):
        serial = run_monte_carlo_resumable(mc_flaky_model, 40, seed=3)
        parallel = run_monte_carlo_resumable(mc_flaky_model, 40, seed=3,
                                             jobs=4)
        assert np.array_equal(serial.result.samples, parallel.result.samples)
        assert parallel.failed == serial.failed
        assert parallel.completed == serial.completed

    def test_parallel_resume_from_serial_checkpoint(self, tmp_path):
        reference = run_monte_carlo_resumable(mc_model, 24, seed=5)
        # Hand-write the state a killed serial run would have left.
        ckpt = Checkpoint(tmp_path / "mc.json", "fp-mc")
        ckpt.save({"next": 13,
                   "samples": list(reference.result.samples[:13]),
                   "failed": []})
        resumed = run_monte_carlo_resumable(mc_model, 24, seed=5,
                                            checkpoint=ckpt, jobs=4)
        assert np.array_equal(resumed.result.samples,
                              reference.result.samples)

    def test_parallel_checkpoint_keeps_sequential_schema(self, tmp_path):
        ckpt = Checkpoint(tmp_path / "schema.json", "fp-schema")
        run_monte_carlo_resumable(mc_model, 16, seed=1, checkpoint=ckpt,
                                  jobs=2, save_every=4)
        state = ckpt.load()
        assert set(state) == {"next", "samples", "failed"}
        assert state["next"] == 16 and len(state["samples"]) == 16
