"""The supervision layer's contract: bounded samples, deterministic
retries, enumerated quarantine — and bit-identity with the unsupervised
executor whenever the faults stop.

Fault injection here uses marker files (the once-only idiom from
:mod:`repro.faults.chaos`): a worker that dies takes its memory with
it, so "fail exactly once" must be recorded somewhere that survives the
death.  Worker callables live at module level so they pickle.
"""

import os
import pathlib
import signal
import time

import pytest

from repro import obs
from repro.checkpoint import Checkpoint, RunBudget
from repro.errors import ConfigurationError, DeadlineExceeded, SimulationError
from repro.exec import (SupervisionPolicy, run_parallel_sweep,
                        run_supervised_sweep, sample_deadline, tick,
                        trap_termination)

# -- picklable work functions ------------------------------------------------


def square(value):
    return value * value


def _strike_once(marker_dir, key, kind):
    marker = pathlib.Path(marker_dir) / f"{key}.{kind}"
    try:
        marker.touch(exist_ok=False)
    except FileExistsError:
        return False
    return True


def fail_once(value, key, marker_dir):
    if _strike_once(marker_dir, key, "fail"):
        raise SimulationError("injected transient failure")
    return value * value


def always_fail(value):
    raise SimulationError("injected permanent failure")


def crash_once(value, key, marker_dir):
    if _strike_once(marker_dir, key, "crash"):
        os._exit(7)
    return value * value


def hang_once(value, key, marker_dir):
    if _strike_once(marker_dir, key, "hang"):
        time.sleep(60.0)
    return value * value


def always_hang(value):
    time.sleep(60.0)


def slow_cooperative(value, seconds):
    """Busy work that honours the cooperative deadline via tick()."""
    deadline = time.monotonic() + seconds
    while time.monotonic() < deadline:
        tick()
        time.sleep(0.01)
    return value * value


def emitting(value):
    obs.event("test.tick", key=value)
    return value + 1


def items_of(fn, count=8, extra=()):
    return [(f"k{i}", fn, (i, *extra)) for i in range(count)]


def keyed_items_of(fn, marker_dir, count=8):
    return [(f"k{i}", fn, (i, f"k{i}", str(marker_dir)))
            for i in range(count)]


CLEAN = {f"k{i}": i * i for i in range(8)}


# -- policy validation -------------------------------------------------------


class TestPolicy:
    def test_default_policy_is_disabled(self):
        policy = SupervisionPolicy()
        assert not policy.enabled

    def test_any_knob_enables(self):
        assert SupervisionPolicy(max_sample_seconds=1.0).enabled
        assert SupervisionPolicy(hang_seconds=1.0).enabled
        assert SupervisionPolicy(max_retries=1).enabled

    def test_validate_rejects_nonsense(self):
        for bad in (SupervisionPolicy(max_sample_seconds=-1.0),
                    SupervisionPolicy(hang_seconds=0.0),
                    SupervisionPolicy(max_retries=-1),
                    SupervisionPolicy(backoff_factor=0.0),
                    SupervisionPolicy(jitter_fraction=2.0)):
            with pytest.raises(ConfigurationError):
                bad.validate()

    def test_describe_names_active_knobs(self):
        text = SupervisionPolicy(max_sample_seconds=2.0,
                                 max_retries=3).describe()
        assert "2" in text and "3" in text

    def test_disabled_policy_takes_plain_path(self):
        outcome = run_parallel_sweep(items_of(square), jobs=1,
                                     policy=SupervisionPolicy())
        assert dict(outcome.results) == CLEAN
        assert outcome.quarantined == ()


# -- serial supervision (jobs=1: cooperative deadline + retry ladder) --------


class TestSerialSupervision:
    POLICY = SupervisionPolicy(max_retries=2, seed=7)

    def test_fault_free_matches_unsupervised(self):
        supervised = run_supervised_sweep(items_of(square), self.POLICY)
        plain = run_parallel_sweep(items_of(square), jobs=1)
        assert dict(supervised.results) == dict(plain.results)
        assert supervised.complete

    def test_fail_once_retries_to_bit_identical(self, tmp_path):
        outcome = run_supervised_sweep(
            keyed_items_of(fail_once, tmp_path), self.POLICY)
        assert dict(outcome.results) == CLEAN
        assert outcome.failures == () and outcome.quarantined == ()

    def test_exhausted_retries_is_plain_failure_not_quarantine(self):
        outcome = run_supervised_sweep(
            [("bad", always_fail, (0,)), ("ok", square, (2,))],
            self.POLICY)
        # A ReproError-only history is a model failure, not a process
        # fault: recorded as failed, never quarantined.
        assert outcome.failures == ("bad",)
        assert outcome.quarantined == ()
        assert outcome.results == {"ok": 4}

    def test_cooperative_deadline_quarantines(self):
        policy = SupervisionPolicy(max_sample_seconds=0.15, seed=7)
        outcome = run_supervised_sweep(
            [("slow", slow_cooperative, (1, 10.0)),
             ("fast", square, (3,))], policy)
        assert outcome.quarantined == ("slow",)
        assert outcome.results == {"fast": 9}
        assert [t.kind for t in outcome.timeouts] == ["deadline"]
        assert outcome.timeouts[0].key == "slow"

    def test_retry_events_are_emitted(self, tmp_path):
        with obs.instrumented() as registry:
            run_supervised_sweep(keyed_items_of(fail_once, tmp_path),
                                 self.POLICY)
            kinds = obs.events().kinds()
        assert kinds.get("exec.supervise.retry", 0) == 8
        assert registry.snapshot()["counters"].get(
            "sweep.supervise.quarantined", 0) == 0


class TestCooperativePrimitives:
    def test_tick_is_noop_when_disarmed(self):
        tick()  # must never raise outside a supervised sample

    def test_sample_deadline_raises_past_budget(self):
        with pytest.raises(DeadlineExceeded) as excinfo:
            with sample_deadline("probe", 0.05):
                time.sleep(0.08)
                tick()
        assert excinfo.value.limit == pytest.approx(0.05)

    def test_sample_deadline_disarms_on_exit(self):
        with sample_deadline("probe", 0.01):
            pass
        time.sleep(0.02)
        tick()  # the expired deadline must not leak out of the context


# -- parallel supervision (watchdog, crash retry, quarantine) ----------------


class TestParallelSupervision:
    POLICY = SupervisionPolicy(hang_seconds=0.6, max_retries=2, seed=7)

    def test_fault_free_matches_serial(self):
        parallel = run_supervised_sweep(items_of(square), self.POLICY,
                                        jobs=2)
        assert dict(parallel.results) == CLEAN
        assert parallel.complete

    def test_crash_once_retries_to_bit_identical(self, tmp_path):
        # One worker-killing sample among honest ones: the pool break
        # is blamed on the right key, which retries to the clean value.
        # (Only one crasher: a pool down-shifted to the serial fallback
        # would run an unspent crash marker in the parent process.)
        items = [(f"k{i}", square, (i,)) for i in range(8)]
        items[5] = ("k5", crash_once, (5, "k5", str(tmp_path)))
        outcome = run_supervised_sweep(items, self.POLICY, jobs=2)
        assert dict(outcome.results) == CLEAN
        assert outcome.quarantined == ()

    def test_hang_once_is_killed_and_retried(self, tmp_path):
        items = [(f"k{i}", square, (i,)) for i in range(6)]
        items[3] = ("k3", hang_once, (3, "k3", str(tmp_path)))
        outcome = run_supervised_sweep(items, self.POLICY, jobs=2)
        assert outcome.results["k3"] == 9
        assert outcome.quarantined == ()
        assert any(t.kind == "hang" and t.key == "k3"
                   for t in outcome.timeouts)

    def test_permanent_hang_is_quarantined_not_lost(self):
        items = [(f"k{i}", square, (i,)) for i in range(6)]
        items[2] = ("k2", always_hang, (2,))
        policy = SupervisionPolicy(hang_seconds=0.5, max_retries=1, seed=7)
        outcome = run_supervised_sweep(items, policy, jobs=2)
        assert outcome.quarantined == ("k2",)
        assert set(outcome.results) == {f"k{i}" for i in range(6)} - {"k2"}
        assert not outcome.complete
        assert "quarantined" in outcome.describe()

    def test_telemetry_of_final_attempt_only(self, tmp_path):
        policy = SupervisionPolicy(max_retries=2, seed=7)
        with obs.instrumented():
            outcome = run_supervised_sweep(
                items_of(emitting, count=6), policy, jobs=2)
            ticks = [e for e in obs.events().events()
                     if e.kind == "test.tick"]
        assert outcome.complete
        # one event per sample, merged in submission order
        assert [e.payload["key"] for e in ticks] == list(range(6))


# -- retry determinism across checkpoint kill+resume (satellite) -------------


class TestRetryDeterminismAcrossResume:
    def _clean(self):
        return dict(run_parallel_sweep(items_of(square), jobs=1).results)

    @staticmethod
    def _one_flaky(marker_dir):
        items = [(f"k{i}", square, (i,)) for i in range(8)]
        items[3] = ("k3", fail_once, (3, "k3", str(marker_dir)))
        return items

    @pytest.mark.parametrize("jobs", [1, 2])
    def test_resume_mid_retry_is_bit_identical(self, tmp_path, jobs):
        """Kill a sweep after a sample's failed first attempt; the
        resumed sweep retries that sample and lands bit-identical."""
        marker_dir = tmp_path / "markers"
        marker_dir.mkdir()
        ckpt = Checkpoint(tmp_path / "sweep.json", fingerprint="fp-retry")
        # First run: no retries allowed, so the injected single failure
        # retires k3; everything else lands in the checkpoint — the
        # state a kill between attempts would leave behind.
        first = run_supervised_sweep(
            self._one_flaky(marker_dir),
            SupervisionPolicy(max_retries=0, retry_failures=False,
                              hang_seconds=5.0, seed=7),
            jobs=jobs, checkpoint=ckpt, save_every=1)
        assert first.failures == ("k3",)
        assert len(first.results) == 7
        # Resume: only k3 is re-attempted (its marker is spent),
        # completing the sweep bit-identically to a clean run.
        resumed = run_supervised_sweep(
            self._one_flaky(marker_dir),
            SupervisionPolicy(max_retries=1, hang_seconds=5.0, seed=7),
            jobs=jobs, checkpoint=ckpt)
        assert dict(resumed.results) == self._clean()
        assert resumed.complete
        assert ckpt.load() == self._clean()

    @pytest.mark.parametrize("jobs", [1, 2])
    def test_retried_equals_uninjected(self, tmp_path, jobs):
        injected = run_supervised_sweep(
            keyed_items_of(fail_once, tmp_path),
            SupervisionPolicy(max_retries=1, hang_seconds=5.0, seed=7),
            jobs=jobs)
        assert dict(injected.results) == self._clean()


# -- graceful interruption ---------------------------------------------------


def interrupting(value):
    if value == 4:
        raise KeyboardInterrupt
    return value * value


class TestInterruption:
    def test_serial_interrupt_yields_partial_outcome(self, tmp_path):
        ckpt = Checkpoint(tmp_path / "int.json", fingerprint="fp-int")
        outcome = run_parallel_sweep(items_of(interrupting), jobs=1,
                                     checkpoint=ckpt, save_every=1)
        assert outcome.interrupted
        assert not outcome.complete
        assert dict(outcome.results) == {f"k{i}": i * i for i in range(4)}
        assert "interrupted" in outcome.describe()
        # The final parent checkpoint holds everything merged so far.
        assert ckpt.load() == {f"k{i}": i * i for i in range(4)}

    def test_supervised_serial_interrupt(self):
        outcome = run_supervised_sweep(
            items_of(interrupting),
            SupervisionPolicy(max_retries=1, seed=7))
        assert outcome.interrupted
        assert dict(outcome.results) == {f"k{i}": i * i for i in range(4)}

    def test_sigterm_raises_keyboard_interrupt_in_trap(self):
        with pytest.raises(KeyboardInterrupt):
            with trap_termination():
                os.kill(os.getpid(), signal.SIGTERM)
                time.sleep(2.0)

    def test_trap_restores_previous_handler(self):
        before = signal.getsignal(signal.SIGTERM)
        with trap_termination():
            assert signal.getsignal(signal.SIGTERM) is not before
        assert signal.getsignal(signal.SIGTERM) is before


# -- validation --------------------------------------------------------------


class TestValidation:
    def test_duplicate_keys_rejected(self):
        with pytest.raises(ConfigurationError):
            run_supervised_sweep([("a", square, (1,)),
                                  ("a", square, (2,))],
                                 SupervisionPolicy(max_retries=1))

    def test_bad_jobs_rejected(self):
        with pytest.raises(ConfigurationError):
            run_supervised_sweep([("a", square, (1,))],
                                 SupervisionPolicy(max_retries=1), jobs=0)

    def test_budget_still_enforced(self):
        outcome = run_supervised_sweep(
            items_of(square), SupervisionPolicy(max_retries=1),
            budget=RunBudget(max_seconds=0.0))
        assert outcome.exhausted == "max_seconds"
        assert outcome.completed == 0
