"""The chaos harness: seeded plans, once-only strikes, corrupted
artifacts, and the end-to-end scenario gates the CI matrix holds."""

import pathlib

import pytest

from repro.checkpoint import Checkpoint
from repro.errors import ConfigurationError, SimulationError
from repro.faults.chaos import (CHAOS_SCENARIOS, ChaosPlan, ChaosReport,
                                _ChaosCall, corrupt_checkpoint,
                                fill_event_sink, generate_chaos_plan,
                                run_chaos_scenario)
from repro.obs import EventLog

KEYS = [f"s{i:02d}" for i in range(12)]


class TestChaosPlan:
    def test_same_seed_same_plan(self, tmp_path):
        draw = lambda: generate_chaos_plan(  # noqa: E731
            KEYS, seed=42, scratch_dir=tmp_path, kills=2, hangs=1,
            slows=3, flakies=2)
        assert draw() == draw()

    def test_different_seed_different_victims(self, tmp_path):
        a = generate_chaos_plan(KEYS, seed=1, scratch_dir=tmp_path, kills=4)
        b = generate_chaos_plan(KEYS, seed=2, scratch_dir=tmp_path, kills=4)
        assert a.kill_keys != b.kill_keys

    def test_victim_sets_are_disjoint(self, tmp_path):
        plan = generate_chaos_plan(KEYS, seed=7, scratch_dir=tmp_path,
                                   kills=3, hangs=3, slows=3, flakies=3)
        victims = (plan.kill_keys + plan.hang_keys + plan.slow_keys
                   + plan.flaky_keys)
        assert len(victims) == 12
        assert len(set(victims)) == 12

    def test_too_many_victims_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError):
            generate_chaos_plan(KEYS, seed=7, scratch_dir=tmp_path,
                                kills=10, hangs=10)

    def test_describe_names_the_victims(self, tmp_path):
        plan = generate_chaos_plan(KEYS, seed=7, scratch_dir=tmp_path,
                                   kills=1)
        assert plan.kill_keys[0] in plan.describe()
        quiet = generate_chaos_plan(KEYS, seed=7, scratch_dir=tmp_path)
        assert "no injections" in quiet.describe()


def plus_one(value):
    return value + 1


class TestChaosCall:
    def test_flaky_strikes_exactly_once(self, tmp_path):
        plan = ChaosPlan(seed=0, scratch_dir=str(tmp_path),
                         flaky_keys=("s00",))
        call = _ChaosCall(plan, "s00", plus_one)
        with pytest.raises(SimulationError):
            call(1)
        # The marker claimed by the first strike survives; the retry
        # runs the real evaluator.
        assert call(1) == 2
        assert call(1) == 2
        assert (tmp_path / "s00.flaky.struck").exists()

    def test_untargeted_key_passes_through(self, tmp_path):
        plan = ChaosPlan(seed=0, scratch_dir=str(tmp_path),
                         flaky_keys=("s00",))
        assert _ChaosCall(plan, "s01", plus_one)(5) == 6
        assert list(tmp_path.iterdir()) == []

    def test_slow_key_still_computes_correctly(self, tmp_path):
        plan = ChaosPlan(seed=0, scratch_dir=str(tmp_path),
                         slow_keys=("s02",), slow_seconds=0.01)
        call = _ChaosCall(plan, "s02", plus_one)
        assert call(3) == 4
        assert call(3) == 4  # slow is per-attempt, never marker-claimed
        assert list(tmp_path.iterdir()) == []


class TestCorruptCheckpoint:
    def _saved(self, tmp_path):
        ckpt = Checkpoint(tmp_path / "c.json", fingerprint="fp")
        ckpt.save({"a": 1.0, "b": 2.0})
        return ckpt

    @pytest.mark.parametrize("mode", ["torn", "garbage", "checksum"])
    def test_corruption_is_quarantined_on_load(self, tmp_path, mode):
        ckpt = self._saved(tmp_path)
        corrupt_checkpoint(ckpt.path, mode=mode)
        assert ckpt.load() is None  # fresh start, not a crash
        sidecar = ckpt.path.with_name(ckpt.path.name + ".corrupt")
        assert sidecar.exists()
        assert not ckpt.path.exists()

    def test_unknown_mode_rejected(self, tmp_path):
        ckpt = self._saved(tmp_path)
        with pytest.raises(ConfigurationError):
            corrupt_checkpoint(ckpt.path, mode="gamma-ray")


class TestDiskFullSink:
    def test_sink_failure_degrades_to_memory(self, tmp_path):
        log = EventLog(jsonl_path=tmp_path / "events.jsonl")
        log.emit("before", n=1)
        fill_event_sink(log)
        log.emit("during", n=2)
        log.emit("after", n=3)
        try:
            assert log.sink_errors == 1  # one strike closes the sink
            assert [e.kind for e in log.events()] == [
                "before", "during", "after"]
        finally:
            log.close()

    def test_degraded_log_keeps_accepting_events(self, tmp_path):
        log = EventLog(jsonl_path=tmp_path / "events.jsonl")
        fill_event_sink(log)
        for i in range(50):
            log.emit("tick", i=i)
        try:
            assert len(log) == 50
            assert log.sink_errors == 1
        finally:
            log.close()


class TestScenarios:
    """End-to-end chaos gates — the same checks CI's matrix holds.

    Each scenario asserts the supervision contract: zero lost keys and
    bit-identical survivors (``report.ok``), with the per-scenario
    recovery visible in the report."""

    def _run(self, tmp_path, scenario, **kwargs):
        report = run_chaos_scenario(scenario, count=6, seed=11, jobs=2,
                                    workdir=tmp_path, **kwargs)
        assert report.ok, report.describe()
        assert report.lost == ()
        assert report.mismatched == ()
        return report

    def test_flaky_retries_to_full_completion(self, tmp_path):
        report = self._run(tmp_path, "flaky")
        assert report.completed == 6
        assert report.quarantined == ()

    def test_slow_completes_within_deadline(self, tmp_path):
        report = self._run(tmp_path, "slow")
        assert report.completed == 6

    def test_kill_recovers_all_samples(self, tmp_path):
        report = self._run(tmp_path, "kill")
        assert report.completed == 6
        assert report.quarantined == ()

    def test_hang_is_detected_and_retried(self, tmp_path):
        report = self._run(tmp_path, "hang")
        assert report.completed == 6

    def test_torn_checkpoint_resumes_bit_identical(self, tmp_path):
        report = self._run(tmp_path, "torn-checkpoint")
        assert report.completed == 6
        assert any("quarantined to" in note for note in report.notes)
        sidecar = (pathlib.Path(tmp_path) / "torn-checkpoint"
                   / "sweep.ckpt.json.corrupt")
        assert sidecar.exists()

    def test_disk_full_degrades_sink_only(self, tmp_path):
        report = self._run(tmp_path, "disk-full")
        assert report.completed == 6
        assert any("sink degraded after 1" in note
                   for note in report.notes)

    def test_unknown_scenario_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError):
            run_chaos_scenario("meteor", workdir=tmp_path)
        with pytest.raises(ConfigurationError):
            run_chaos_scenario("kill", count=1, workdir=tmp_path)


class TestChaosReport:
    def test_ok_requires_nothing_lost_or_drifted(self):
        good = ChaosReport(scenario="kill", requested=4, completed=4,
                           failures=(), quarantined=(), lost=(),
                           mismatched=())
        assert good.ok and "ok" in good.describe()
        bad = ChaosReport(scenario="kill", requested=4, completed=3,
                          failures=(), quarantined=(), lost=("s01",),
                          mismatched=())
        assert not bad.ok
        assert "FAILED" in bad.describe()
        assert "LOST: s01" in bad.describe()

    def test_quarantine_is_enumerated_not_hidden(self):
        report = ChaosReport(scenario="hang", requested=4, completed=3,
                             failures=(), quarantined=("s02",), lost=(),
                             mismatched=())
        assert report.ok  # quarantined-but-accounted is a pass
        assert "quarantined: s02" in report.describe()

    def test_scenario_table_matches_cli(self):
        assert CHAOS_SCENARIOS == ("kill", "hang", "slow", "flaky",
                                   "torn-checkpoint", "disk-full")
