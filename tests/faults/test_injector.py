"""Fault injection against the refresh interference simulator.

The last class is the ISSUE's property-style check: across seeds,
injected refresh drops only ever increase the dropped/data-loss counts
(monotone in the drop fraction), and no faulty schedule can deadlock
the simulation — every trace drains.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import obs
from repro.errors import ConfigurationError
from repro.faults import (FaultPlan, FaultyRefreshPolicy, RefreshFault,
                          generate_fault_plan)
from repro.refresh import (LocalizedRefresh, RefreshSimulator,
                           uniform_random_trace)

N_BLOCKS = 16
ROWS = 8
PERIOD = 4096


def policy() -> LocalizedRefresh:
    return LocalizedRefresh(n_blocks=N_BLOCKS, rows_per_block=ROWS,
                            refresh_period_cycles=PERIOD)


def faulty(plan: FaultPlan) -> FaultyRefreshPolicy:
    return FaultyRefreshPolicy(base=policy(), plan=plan)


def trace(seed: int = 5, cycles: int = 3 * PERIOD,
          activity: float = 0.5) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return uniform_random_trace(cycles, N_BLOCKS, activity, rng)


def drop_plan(fraction: float, seed: int = 11) -> FaultPlan:
    return generate_fault_plan(
        seed=seed, n_blocks=N_BLOCKS, rows_per_block=ROWS,
        weak_cell_fraction=0.0, stuck_bit_fraction=0.0,
        sa_outlier_fraction=0.0, refresh_drop_fraction=fraction)


class TestScheduleRewriting:
    def test_dropped_slot_has_zero_duration(self):
        plan = FaultPlan(seed=0, n_blocks=N_BLOCKS, rows_per_block=ROWS,
                         refresh_faults=(RefreshFault(3, "drop"),))
        wrapped = faulty(plan)
        assert wrapped.refresh_starting_at(3).duration == 0
        # The same row faults again next period.
        total = N_BLOCKS * ROWS
        assert wrapped.fault_kind(3 + total) == "drop"
        # Healthy slots pass through untouched.
        assert wrapped.refresh_starting_at(4) == \
            policy().refresh_starting_at(4)

    def test_late_slot_is_delayed(self):
        plan = FaultPlan(
            seed=0, n_blocks=N_BLOCKS, rows_per_block=ROWS,
            refresh_faults=(RefreshFault(5, "late", delay_cycles=17),))
        wrapped = faulty(plan)
        base_op = policy().refresh_starting_at(5)
        assert wrapped.refresh_starting_at(5).start_cycle == \
            base_op.start_cycle + 17

    def test_geometry_delegates_to_base(self):
        wrapped = faulty(drop_plan(0.1))
        base = policy()
        assert wrapped.total_rows == base.total_rows
        assert wrapped.utilisation() == base.utilisation()

    def test_rejects_mismatched_plan(self):
        plan = generate_fault_plan(seed=0, n_blocks=2, rows_per_block=2)
        with pytest.raises(ConfigurationError):
            faulty(plan)


class TestSimulatorCounting:
    def test_healthy_run_counts_zero_faults(self):
        stats = RefreshSimulator(policy()).run(trace())
        assert stats.dropped_refreshes == 0
        assert stats.late_refreshes == 0
        assert stats.data_loss_events == 0

    def test_faulty_run_counts_drops_as_data_loss(self):
        plan = drop_plan(0.05)
        registry = obs.MetricsRegistry()
        with obs.instrumented(registry=registry, tracer=obs.Tracer()):
            stats = RefreshSimulator(faulty(plan)).run(trace())
        assert stats.dropped_refreshes > 0
        assert stats.data_loss_events == stats.dropped_refreshes
        counters = registry.snapshot()["counters"]
        assert counters["refresh.dropped"] == stats.dropped_refreshes
        assert counters["refresh.data_loss_events"] == \
            stats.data_loss_events

    def test_late_refreshes_counted_separately(self):
        plan = generate_fault_plan(
            seed=2, n_blocks=N_BLOCKS, rows_per_block=ROWS,
            weak_cell_fraction=0.0, stuck_bit_fraction=0.0,
            sa_outlier_fraction=0.0, refresh_late_fraction=0.1)
        stats = RefreshSimulator(faulty(plan)).run(trace())
        assert stats.late_refreshes > 0
        assert stats.dropped_refreshes == 0
        assert stats.data_loss_events == 0


class TestDropMonotonicityProperty:
    """Property-style sweep: more drops never mean fewer loss events,
    and no fault mix deadlocks the simulator."""

    FRACTIONS = (0.0, 0.05, 0.15, 0.4)

    @pytest.mark.parametrize("seed", [1, 2, 3, 4, 5])
    def test_drops_monotonically_increase_loss_counts(self, seed):
        losses = []
        for fraction in self.FRACTIONS:
            plan = drop_plan(fraction, seed=seed)
            sim = RefreshSimulator(faulty(plan))
            stats = sim.run(trace(seed=seed))
            assert stats.completed == stats.accesses  # no deadlock
            losses.append(stats.data_loss_events)
        assert losses[0] == 0
        assert all(b >= a for a, b in zip(losses, losses[1:]))
        assert losses[-1] > 0  # 40% drops must actually register

    @pytest.mark.parametrize("seed", [6, 7, 8])
    def test_mixed_fault_runs_always_drain(self, seed):
        plan = generate_fault_plan(
            seed=seed, n_blocks=N_BLOCKS, rows_per_block=ROWS,
            weak_cell_fraction=0.01, refresh_drop_fraction=0.2,
            refresh_late_fraction=0.2, max_late_cycles=32)
        stats = RefreshSimulator(faulty(plan)).run(
            trace(seed=seed, activity=0.9))
        assert stats.completed == stats.accesses
        assert stats.dropped_refreshes > 0
        assert stats.late_refreshes > 0
