"""Fault-plan generation: seeded, replayable, physically sensible."""

from __future__ import annotations

import pytest

from repro.cells import Dram1t1cCell
from repro.errors import ConfigurationError
from repro.faults import (FaultPlan, RefreshFault, SenseAmpOutlier,
                          StuckBit, WeakCell, generate_fault_plan)
from repro.tech import TechnologyNode


def make_plan(seed: int = 7, **kwargs) -> FaultPlan:
    defaults = dict(n_blocks=64, rows_per_block=32,
                    weak_cell_fraction=0.01, stuck_bit_fraction=0.005,
                    sa_outlier_fraction=0.05,
                    refresh_drop_fraction=0.002,
                    refresh_late_fraction=0.004)
    defaults.update(kwargs)
    return generate_fault_plan(seed=seed, **defaults)


class TestDeterminism:
    def test_same_seed_same_plan(self):
        assert make_plan(seed=42) == make_plan(seed=42)
        assert make_plan(seed=42).fingerprint() == \
            make_plan(seed=42).fingerprint()

    def test_different_seed_different_plan(self):
        assert make_plan(seed=1) != make_plan(seed=2)
        assert make_plan(seed=1).fingerprint() != \
            make_plan(seed=2).fingerprint()


class TestPopulationShape:
    def test_fractions_become_counts(self):
        plan = make_plan()
        assert len(plan.weak_cells) == round(0.01 * plan.total_rows)
        assert len(plan.stuck_bits) == round(0.005 * plan.total_rows)
        assert len(plan.sa_outliers) == round(0.05 * plan.n_blocks)

    def test_weak_cells_drawn_from_retention_tail(self, scratchpad_cell):
        model = scratchpad_cell.retention_model()
        plan = make_plan(retention_model=model)
        nominal = model.nominal_retention()
        # Tail draws: every weak cell is below the nominal retention.
        assert all(c.retention_time < nominal for c in plan.weak_cells)
        assert plan.weakest_retention() == min(
            c.retention_time for c in plan.weak_cells)

    def test_coordinates_inside_matrix(self):
        plan = make_plan()
        for cell in plan.weak_cells:
            assert 0 <= cell.block < plan.n_blocks
            assert 0 <= cell.row < plan.rows_per_block
        for stuck in plan.stuck_bits:
            assert 0 <= stuck.bit < plan.word_bits
        for fault in plan.refresh_faults:
            assert 0 <= fault.row < plan.total_rows

    def test_dropped_rows_never_also_late(self):
        plan = make_plan(refresh_drop_fraction=0.1,
                         refresh_late_fraction=0.1)
        assert not plan.dropped_rows() & set(plan.late_rows())

    def test_empty_fractions_empty_plan(self):
        plan = make_plan(weak_cell_fraction=0.0, stuck_bit_fraction=0.0,
                         sa_outlier_fraction=0.0,
                         refresh_drop_fraction=0.0,
                         refresh_late_fraction=0.0)
        assert plan.weak_cells == ()
        assert plan.weakest_retention() is None
        assert plan.worst_sa_multiplier() == 1.0
        assert plan.weak_cell_fraction == 0.0


class TestDerivedViews:
    def test_global_row_is_block_major(self):
        plan = make_plan()
        assert plan.global_row(0, 0) == 0
        assert plan.global_row(1, 0) == plan.rows_per_block
        assert plan.global_row(2, 3) == 2 * plan.rows_per_block + 3

    def test_describe_mentions_every_category(self):
        text = make_plan().describe()
        for word in ("weak cells", "stuck bits", "SA outliers",
                     "dropped", "late"):
            assert word in text


class TestValidation:
    def test_rejects_fraction_above_one(self):
        with pytest.raises(ConfigurationError):
            make_plan(weak_cell_fraction=1.5)

    def test_rejects_negative_fraction(self):
        with pytest.raises(ConfigurationError):
            make_plan(refresh_drop_fraction=-0.1)

    def test_rejects_empty_matrix(self):
        with pytest.raises(ConfigurationError):
            FaultPlan(seed=0, n_blocks=0, rows_per_block=32)

    def test_rejects_unknown_refresh_fault_kind(self):
        with pytest.raises(ConfigurationError):
            RefreshFault(row=0, kind="explode")

    def test_handcrafted_plan_roundtrips(self):
        plan = FaultPlan(
            seed=0, n_blocks=2, rows_per_block=4,
            weak_cells=(WeakCell(0, 1, 1e-4),),
            stuck_bits=(StuckBit(1, 2, 5),),
            sa_outliers=(SenseAmpOutlier(1, 1.4),),
            refresh_faults=(RefreshFault(3, "drop"),
                            RefreshFault(5, "late", delay_cycles=9)))
        assert plan.weak_rows() == {1}
        assert plan.dropped_rows() == {3}
        assert plan.late_rows() == {5: 9}
        assert plan.worst_sa_multiplier() == 1.4
