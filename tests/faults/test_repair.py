"""ECC + spare-row repair accounting: degraded, not dead."""

from __future__ import annotations

import math

import pytest

from repro import obs
from repro.errors import ConfigurationError
from repro.faults import (FaultPlan, RepairModel, StuckBit, WeakCell,
                          assess_plan, generate_fault_plan)
from repro.units import kb


def handcrafted_plan() -> FaultPlan:
    """Two blocks, one spare each: 3 weak rows + 1 uncorrectable row."""
    return FaultPlan(
        seed=0, n_blocks=2, rows_per_block=8,
        weak_cells=(WeakCell(0, 1, 5e-6), WeakCell(0, 2, 1e-5),
                    WeakCell(1, 3, 2e-5)),
        # Row (1, 0) has two stuck bits: beyond 1-bit ECC.
        stuck_bits=(StuckBit(1, 0, 0), StuckBit(1, 0, 7),
                    StuckBit(0, 5, 3)),
    )


class TestRepairAccounting:
    def test_severity_ordered_allocation(self):
        repair = RepairModel(spare_rows_per_block=1, correctable_bits=1)
        report = assess_plan(handcrafted_plan(), repair,
                             base_refresh_period=1e-3)
        # Block 1's spare goes to the uncorrectable stuck row, block 0's
        # to its weakest cell (5 us); nothing is mapped out.
        assert report.repaired_rows == 2
        assert report.spare_rows_used == 2
        assert report.mapped_out_rows == 0
        # (0, 5) has one stuck bit: ECC absorbs it on every access.
        assert report.correctable_rows == 1
        assert report.corrected_bits_per_access == 1
        # Weak cells at (0, 2) and (1, 3) survive repair.
        assert report.surviving_weak_cells == 2
        assert report.functional

    def test_refresh_uplift_follows_weakest_survivor(self):
        repair = RepairModel(spare_rows_per_block=1, correctable_bits=1,
                             retention_guard=2.0)
        report = assess_plan(handcrafted_plan(), repair,
                             base_refresh_period=1e-3)
        # Weakest survivor is 1e-5 s; guard 2 -> 5e-6 s period.
        assert report.degraded_refresh_period == pytest.approx(5e-6)
        assert report.refresh_rate_uplift == pytest.approx(200.0)

    def test_no_spares_maps_out_uncorrectable_rows(self):
        repair = RepairModel(spare_rows_per_block=0, correctable_bits=1)
        report = assess_plan(handcrafted_plan(), repair,
                             base_refresh_period=1e-3)
        assert report.repaired_rows == 0
        assert report.mapped_out_rows == 1  # the 2-stuck-bit row
        assert report.surviving_weak_cells == 3
        assert 0.0 < report.capacity_loss_fraction < 1.0
        assert report.functional

    def test_static_cell_base_period_keeps_unit_uplift(self):
        plan = FaultPlan(seed=0, n_blocks=1, rows_per_block=8)
        report = assess_plan(plan, RepairModel(),
                             base_refresh_period=math.inf)
        assert report.refresh_rate_uplift == 1.0

    def test_rejects_nonpositive_base_period(self):
        with pytest.raises(ConfigurationError):
            assess_plan(handcrafted_plan(), RepairModel(),
                        base_refresh_period=0.0)

    def test_counters_emitted(self):
        registry = obs.MetricsRegistry()
        with obs.instrumented(registry=registry, tracer=obs.Tracer()):
            assess_plan(handcrafted_plan(),
                        RepairModel(spare_rows_per_block=0),
                        base_refresh_period=1e-3)
        counters = registry.snapshot()["counters"]
        assert counters["faults.rows_mapped_out"] == 1
        gauges = registry.snapshot()["gauges"]
        assert gauges["faults.refresh_rate_uplift"] > 1.0

    def test_describe_reports_degraded_but_functional(self):
        report = assess_plan(handcrafted_plan(), RepairModel(),
                             base_refresh_period=1e-3)
        text = report.describe()
        assert "functional       : yes" in text
        assert "rate uplift" in text


class TestMacroIntegration:
    def test_fault_assessment_on_built_macro(self, dram_macro_128kb):
        org = dram_macro_128kb.organization
        plan = generate_fault_plan(
            seed=3, n_blocks=org.n_localblocks,
            rows_per_block=org.cells_per_lbl, word_bits=org.word_bits,
            weak_cell_fraction=0.005, refresh_drop_fraction=0.001)
        report = dram_macro_128kb.fault_assessment(plan)
        assert report.functional
        assert report.total_rows == org.n_localblocks * org.cells_per_lbl
        # The macro's refresh period is finite for a dynamic cell and
        # the degraded period can only be shorter.
        assert report.degraded_refresh_period <= report.base_refresh_period

    def test_fault_assessment_rejects_mismatched_plan(self, dram_macro_128kb):
        plan = generate_fault_plan(seed=3, n_blocks=2, rows_per_block=4)
        with pytest.raises(ConfigurationError):
            dram_macro_128kb.fault_assessment(plan)


class TestHierarchyDegradation:
    def test_cache_fault_model_shrinks_capacity_and_counts_errors(
            self, dram_macro_128kb):
        from repro.faults import CacheFaultModel
        from repro.faults.repair import DegradedMacroReport

        report = DegradedMacroReport(
            plan_fingerprint="x", total_rows=4096, spare_rows_used=0,
            spare_rows_available=0, repaired_rows=0, mapped_out_rows=409,
            corrected_bits_per_access=1, correctable_rows=41,
            surviving_weak_cells=0, base_refresh_period=1e-3,
            degraded_refresh_period=1e-3, sa_margin_multiplier=1.0)
        model = CacheFaultModel(report)
        total = 128 * kb
        assert model.usable_bits(total) < total
        assert model.correction_probability() == pytest.approx(41 / 4096)
        assert model.expected_corrected_errors(1000) == pytest.approx(
            1000 * 41 / 4096)
