"""Integration: cross-module consistency of the full system."""

import numpy as np
import pytest

from repro import FastDramDesign
from repro.cache import (
    ActivityPowerModel,
    Cache,
    CacheHierarchy,
    HierarchyLevel,
    looping_addresses,
)
from repro.core import SramDramComparison
from repro.stack3d import hybrid_cache_stack
from repro.units import Mb, kb


class TestAnalyticVsCircuit:
    def test_charge_sharing_signal_agrees(self):
        """The analytic organization signal and the SPICE local-block
        simulation must agree on the LBL excursion."""
        from repro.array import simulate_localblock_read
        design = FastDramDesign(technology="scratchpad")
        macro = design.build(128 * kb, retention_override=1e-4)
        analytic = macro.organization.read_signal()
        wave = simulate_localblock_read(design.cell(), cells_per_lbl=16,
                                        stored_value=0)
        lbl = wave.result.voltage("lbl")
        simulated = 1.0 - float(lbl[len(lbl) // 4])
        assert simulated == pytest.approx(analytic, rel=0.3)

    def test_refresh_restores_at_slot_time(self):
        """The macro's refresh-slot estimate bounds the simulated restore."""
        design = FastDramDesign(technology="scratchpad")
        macro = design.build(128 * kb, retention_override=1e-4)
        from repro.array import simulate_localblock_read
        wave = simulate_localblock_read(design.cell(), stored_value=0,
                                        refresh_only=True)
        assert wave.restored_correctly
        assert macro.refresh_slot_time() < 5e-9


class TestSystemAssembly:
    def test_stack_hierarchy_workload(self, rng):
        """Fig. 2 system end to end: stack -> hierarchy -> workload."""
        stack = hybrid_cache_stack()
        l1_macro, l2_macro = stack.dies[1].macros
        hierarchy = CacheHierarchy(levels=[
            HierarchyLevel("L1", Cache(2048, 4, 8), l1_macro),
            HierarchyLevel("L2", Cache(32768, 8, 8), l2_macro),
        ])
        stats = hierarchy.run(looping_addresses(30000, 1500, rng))
        assert stats.hit_rate(0) > 0.95
        # Per-op energy near the L1 read energy once the compulsory
        # misses of the first pass have amortised.
        assert stats.average_energy < 4 * l1_macro.read_energy().total

    def test_comparison_consistent_with_macros(self):
        comparison = SramDramComparison(sizes=(128 * kb,),
                                        retention_override=1e-3)
        row = comparison.access_time()[0]
        dram = comparison.dram_macro(128 * kb)
        assert row.dram == pytest.approx(dram.access_time())

    def test_activity_model_consistent_with_compare(self):
        comparison = SramDramComparison(sizes=(128 * kb,),
                                        retention_override=1e-3)
        macro = comparison.dram_macro(128 * kb)
        activity_model = ActivityPowerModel(macro=macro)
        row = comparison.total_power(activity=0.5, total_bits=128 * kb)
        assert activity_model.power_at(0.5).total == pytest.approx(row.dram)


class TestDeterminism:
    def test_macro_figures_deterministic(self):
        a = FastDramDesign().build(128 * kb, retention_override=1e-3)
        b = FastDramDesign().build(128 * kb, retention_override=1e-3)
        assert a.summary() == b.summary()

    def test_retention_mc_seeded(self, dram_macro_128kb):
        s1 = dram_macro_128kb.retention_statistics(count=200)
        s2 = dram_macro_128kb.retention_statistics(count=200)
        assert s1.worst_case == s2.worst_case
