"""Failure injection: the library must fail loudly and specifically.

Every guard in the model stack is exercised with the scenario it
protects against, checking both the exception type and that the message
carries the domain context a user needs.
"""

import dataclasses

import numpy as np
import pytest

from repro.core import FastDramDesign
from repro.errors import (
    CalibrationError,
    ConfigurationError,
    ConvergenceError,
    NetlistError,
    ReproError,
    SimulationError,
)
from repro.units import kb


class TestErrorHierarchy:
    def test_all_errors_are_repro_errors(self):
        for exc_type in (ConfigurationError, ConvergenceError,
                         NetlistError, SimulationError, CalibrationError):
            assert issubclass(exc_type, ReproError)


class TestArchitectureGuards:
    def test_monolithic_bitline_message_names_the_cure(self):
        """The infeasible-signal error must tell the designer what to
        change (the paper's own remedy: shorten the LBL)."""
        macro = FastDramDesign(cells_per_lbl=4096).build(
            128 * kb, retention_override=1e-3)
        with pytest.raises(ConfigurationError,
                           match="shorten the LBL|cell capacitor"):
            macro.access_time()

    def test_overdrive_on_logic_process_names_the_rule(self):
        from repro.cells import Dram1t1cCell
        from repro.tech import StorageCapacitor, TechnologyNode
        node = TechnologyNode.logic_90nm()
        with pytest.raises(ConfigurationError, match="reliability"):
            Dram1t1cCell(node=node,
                         capacitor=StorageCapacitor.cmos_gate(node),
                         wordline_voltage=1.7)

    def test_word_size_mismatch_reported(self):
        with pytest.raises(ConfigurationError, match="divide"):
            FastDramDesign().build(100_001, retention_override=1e-3)


class TestRefreshSaturation:
    def test_saturated_memory_reports_period_and_rows(self):
        from repro.refresh import (MonoblockRefresh, RefreshSimulator,
                                   uniform_random_trace)
        rng = np.random.default_rng(0)
        trace = uniform_random_trace(20_000, 128, 0.9, rng)
        policy = MonoblockRefresh(n_blocks=128, rows_per_block=32,
                                  refresh_period_cycles=5000)
        with pytest.raises(SimulationError, match="saturated"):
            RefreshSimulator(policy).run(trace)


class TestSpiceGuards:
    def test_floating_circuit_named(self):
        from repro.spice import Circuit, Resistor, simulate_transient
        c = Circuit("floating-island")
        c.add(Resistor("r1", "a", "b", 1e3))
        with pytest.raises(NetlistError, match="ground"):
            simulate_transient(c, 1e-9, 1e-12)

    def test_singular_matrix_mentions_floating_nodes(self):
        from repro.spice import Circuit, CurrentSource, dc, simulate_transient
        c = Circuit("current-into-nothing")
        c.add(CurrentSource("i1", "0", "a", dc(1e-3)))
        with pytest.raises(SimulationError, match="floating"):
            simulate_transient(c, 1e-9, 1e-12)

    def test_convergence_error_carries_time(self):
        """A genuinely unstable stamp must raise ConvergenceError with
        the failing time, not loop forever: force it with an absurd
        negative-resistance-like switch arrangement."""
        from repro.spice import (Circuit, Capacitor, Switch,
                                 VoltageSource, dc)
        from repro.spice.transient import _solve_point
        from repro.spice.mna import MnaSystem
        c = Circuit("stubborn")
        c.add(VoltageSource("v1", "a", "0", dc(1.0)))
        c.add(Capacitor("c1", "b", "0", 1e-15))
        # Switch controlled by its own output: a combinational loop.
        c.add(Switch("s1", "a", "b", "b", "0", threshold=0.5,
                     transition=1e-6, r_on=1.0))
        system = MnaSystem(c)
        x = np.zeros(system.size)
        # The loop may or may not converge depending on damping; both
        # outcomes are acceptable, but it must never hang.
        try:
            _solve_point(system, c, x, 0.0, 1e-12, "be", {})
        except ConvergenceError as exc:
            assert "stubborn" in str(exc)


class TestCalibrationGuards:
    def test_sram_anchor_rejects_wild_models(self):
        from repro.sramref import PUBLISHED_REFERENCE
        with pytest.raises(CalibrationError, match="deviates"):
            PUBLISHED_REFERENCE.check_energy(50e-12)

    def test_margin_analysis_rejects_static_cells(self, sram_macro_128kb,
                                                  dram_macro_128kb):
        from repro.array import ReadMarginAnalysis
        with pytest.raises(ConfigurationError, match="dynamic"):
            ReadMarginAnalysis(
                organization=sram_macro_128kb.organization,
                local_sa=sram_macro_128kb.local_sa,
                retention=dram_macro_128kb.cell_design.retention_model())
