"""Circuit-level validation of the mismatch/offset model.

The architecture model takes the local SA's input offset from the
Pelgrom analytic (``SenseAmplifier.raw_offset_sigma``).  Here the same
offset is injected into the transistor-level latch (a VT shift on one
input device) and the circuit's decision is checked: differentials
below the injected offset mis-resolve, differentials above it resolve
correctly — tying :mod:`repro.variability` to :mod:`repro.spice`.
"""

import pytest

from repro.spice import (
    Capacitor,
    Circuit,
    MosfetElement,
    Switch,
    VoltageSource,
    dc,
    pulse,
    simulate_transient,
)
from repro.tech import Mosfet, Polarity, VtFlavor
from repro.units import fF, ns, ps


def resolve(logic_node, differential: float, vth_shift: float) -> bool:
    """Returns True when the latch resolves 'bit' high.

    ``differential`` is V(bit) - V(bitb) at enable; ``vth_shift`` is
    applied to the NMOS whose gate is 'bitb' (it discharges 'bit'): a
    *negative* shift strengthens it and biases the latch against 'bit'.
    """
    sa_n = Mosfet(logic_node, Polarity.NMOS, VtFlavor.SVT,
                  width=logic_node.width_units(4.0))
    sa_p = Mosfet(logic_node, Polarity.PMOS, VtFlavor.SVT,
                  width=logic_node.width_units(6.0))
    c = Circuit("sa-offset")
    c.add(VoltageSource("vdd", "vdd", "0", dc(1.2)))
    c.add(VoltageSource("ven", "en", "0",
                        pulse(0.0, 1.2, delay=0.2 * ns, rise=20 * ps,
                              width=10 * ns)))
    common = 0.6
    c.add(Capacitor("cb", "bit", "0", 10 * fF,
                    initial_voltage=common + differential / 2))
    c.add(Capacitor("cbb", "bitb", "0", 10 * fF,
                    initial_voltage=common - differential / 2))
    c.add(MosfetElement("mn1", "bit", "bitb", "tail",
                        sa_n.with_vth_shift(vth_shift)))
    c.add(MosfetElement("mn2", "bitb", "bit", "tail", sa_n))
    c.add(MosfetElement("mp1", "bit", "bitb", "head", sa_p))
    c.add(MosfetElement("mp2", "bitb", "bit", "head", sa_p))
    c.add(Switch("swf", "tail", "0", "en", "0", threshold=0.6, r_on=500.0))
    c.add(Switch("swh", "head", "vdd", "en", "0", threshold=0.6,
                 r_on=500.0))
    result = simulate_transient(
        c, 2 * ns, 1 * ps,
        initial_voltages={"vdd": 1.2,
                          "bit": common + differential / 2,
                          "bitb": common - differential / 2})
    return result.final_voltage("bit") > 0.6


class TestOffsetInjection:
    def test_balanced_latch_follows_input(self, logic_node):
        assert resolve(logic_node, differential=+0.02, vth_shift=0.0)
        assert not resolve(logic_node, differential=-0.02, vth_shift=0.0)

    def test_offset_flips_small_differential(self, logic_node):
        """A strengthened bit-discharging device (-60 mV on mn1) defeats
        a +20 mV input — the circuit form of input-referred offset."""
        assert not resolve(logic_node, differential=+0.02,
                           vth_shift=-0.060)

    def test_large_differential_overcomes_offset(self, logic_node):
        assert resolve(logic_node, differential=+0.15, vth_shift=-0.060)

    def test_circuit_offset_matches_injected_shift(self, logic_node):
        """Bisect the flipping differential: it must land within a
        factor ~2 of the injected VT shift (input-referred offset of a
        source-coupled latch ~ its VT mismatch)."""
        shift = -0.050
        lo, hi = 0.0, 0.3
        for _ in range(12):
            mid = 0.5 * (lo + hi)
            if resolve(logic_node, differential=mid, vth_shift=shift):
                hi = mid
            else:
                lo = mid
        threshold = 0.5 * (lo + hi)
        assert 0.4 * abs(shift) < threshold < 2.5 * abs(shift)


class TestVthShiftModel:
    def test_shift_moves_threshold(self, logic_node):
        device = Mosfet(logic_node, Polarity.NMOS, VtFlavor.SVT,
                        width=1e-6)
        shifted = device.with_vth_shift(+0.05)
        assert shifted.vth == pytest.approx(device.vth + 0.05)

    def test_leakage_tracks_shift(self, logic_node):
        device = Mosfet(logic_node, Polarity.NMOS, VtFlavor.SVT,
                        width=1e-6)
        swing = device.params.subthreshold_swing
        shifted = device.with_vth_shift(swing)
        assert shifted.off_current() == pytest.approx(
            device.off_current() / 10.0, rel=0.05)

    def test_drive_weakens_with_positive_shift(self, logic_node):
        device = Mosfet(logic_node, Polarity.NMOS, VtFlavor.SVT,
                        width=1e-6)
        assert device.with_vth_shift(+0.1).on_current() < device.on_current()

    def test_extreme_shift_rejected(self, logic_node):
        from repro.errors import ConfigurationError
        device = Mosfet(logic_node, Polarity.NMOS, VtFlavor.SVT,
                        width=1e-6)
        with pytest.raises(ConfigurationError):
            device.with_vth_shift(-0.4)

    def test_original_unmodified(self, logic_node):
        device = Mosfet(logic_node, Polarity.NMOS, VtFlavor.SVT,
                        width=1e-6)
        before = device.vth
        device.with_vth_shift(0.1)
        assert device.vth == before
