"""Integration: every headline claim of the paper, asserted end-to-end.

One test per sentence of the abstract/conclusion, each exercising the
full public API the way a reader checking the paper would.
"""

import numpy as np
import pytest

from repro import FastDramDesign, SramBaselineDesign
from repro.refresh import (
    LocalizedRefresh,
    MonoblockRefresh,
    RefreshSimulator,
    uniform_random_trace,
)
from repro.units import kb, Mb, ns, pJ


class TestAbstract:
    """'The 128 kb memory architecture proposed here achieves an access
    time of 1.3 ns for a dynamic energy of less than 0.2 pJ per bit.'"""

    def test_access_time_near_1_3ns(self, dram_macro_128kb):
        assert dram_macro_128kb.access_time() == pytest.approx(
            1.3 * ns, rel=0.4)

    def test_energy_below_02_pj_per_bit(self, dram_macro_128kb):
        assert dram_macro_128kb.energy_per_bit(write=False) < 0.2 * pJ
        assert dram_macro_128kb.energy_per_bit(write=True) < 0.2 * pJ

    def test_factor_10_static_power(self, dram_macro_2mb, sram_macro_2mb):
        """'gaining a factor of 10 in static power consumption'"""
        gain = (sram_macro_2mb.static_power().power
                / dram_macro_2mb.static_power().power)
        assert gain == pytest.approx(10.0, rel=0.8)
        assert gain > 5.0

    def test_factor_2plus_area(self, dram_macro_2mb, sram_macro_2mb):
        """'and a factor of 2.x in area'"""
        gain = sram_macro_2mb.area() / dram_macro_2mb.area()
        assert 2.0 < gain < 3.5


class TestConclusion:
    def test_matches_sram_speed_and_active_power(self, dram_macro_128kb,
                                                 sram_macro_128kb):
        """'The active power and speed figures are similar for both DRAM
        and SRAM architectures.'"""
        speed = dram_macro_128kb.access_time() / sram_macro_128kb.access_time()
        read = (dram_macro_128kb.read_energy().total
                / sram_macro_128kb.read_energy().total)
        assert 0.8 < speed < 1.25
        assert 0.7 < read < 1.4

    def test_outperforms_on_density_and_passive_power(self, dram_macro_2mb,
                                                      sram_macro_2mb):
        """'outperforms typical SRAM in density and passive power'"""
        assert dram_macro_2mb.area() < sram_macro_2mb.area()
        assert (dram_macro_2mb.static_power().power
                < sram_macro_2mb.static_power().power)


class TestRefreshClaim:
    def test_localized_refresh_negligible_penalty(self):
        """'A localized refresh mechanism … reduces its impact on access
        delay' — at the DRAM-technology retention the busy fraction is
        well below a percent, vs the monoblock scheme's percents."""
        rng = np.random.default_rng(1)
        trace = uniform_random_trace(100_000, 128, 0.5, rng)
        retention_cycles = int(500e-6 * 500e6)
        local = RefreshSimulator(LocalizedRefresh(
            n_blocks=128, rows_per_block=32,
            refresh_period_cycles=retention_cycles)).run(trace)
        mono = RefreshSimulator(MonoblockRefresh(
            n_blocks=128, rows_per_block=32,
            refresh_period_cycles=retention_cycles)).run(trace)
        assert local.busy_fraction < 0.001
        assert mono.busy_fraction > 0.01

    def test_refresh_energy_excludes_global_circuits(self, dram_macro_128kb):
        """'neither the global sensing circuit nor the global write
        circuits are used during the operation'"""
        model = dram_macro_128kb.energy_model
        refresh = model.refresh_row_energy()
        assert refresh == pytest.approx(
            model.cell_energy() + model.localblock_energy())
        # No decode, global or io terms:
        assert refresh < model.access(write=False).total - model.decode_energy()


class TestMethodologyConsistency:
    def test_scratchpad_and_dram_tech_agree(self):
        """The paper's central methodological bet: the architecture's
        figures survive the technology translation."""
        scratchpad = FastDramDesign(technology="scratchpad").build(
            128 * kb, retention_override=1e-4)
        dram = FastDramDesign(technology="dram").build(
            128 * kb, retention_override=1e-3)
        assert dram.access_time() == pytest.approx(
            scratchpad.access_time(), rel=0.25)
        assert dram.read_energy().total == pytest.approx(
            scratchpad.read_energy().total, rel=0.35)

    def test_density_ranking(self, dram_macro_128kb, sram_macro_128kb):
        """Scratchpad cell denser than SRAM, trench densest."""
        scratchpad = FastDramDesign(technology="scratchpad").build(
            128 * kb, retention_override=1e-4)
        assert (dram_macro_128kb.area() < scratchpad.area()
                < sram_macro_128kb.area())
