"""Tests for run diffing (repro.obs.diff)."""

import math

import pytest

from repro.errors import ConfigurationError
from repro.obs.diff import (DEFAULT_THRESHOLD, MetricDelta, diff_reports,
                            diff_to_json, flatten_metrics, format_diff,
                            load_report, metric_direction)


def _delta(name, before, after, threshold=DEFAULT_THRESHOLD):
    return MetricDelta(name=name, before=before, after=after,
                       direction=metric_direction(name), threshold=threshold)


class TestDirection:
    @pytest.mark.parametrize("name", [
        "solver.steps_per_sec", "sweep.speedup", "cache.hits",
        "lu.reuse_ratio", "sweep.completed"])
    def test_higher_better(self, name):
        assert metric_direction(name) == "higher_better"

    @pytest.mark.parametrize("name", [
        "total_duration_s", "refresh.stall_cycles", "cache.misses",
        "spice.newton.failures", "refresh.dropped"])
    def test_lower_better(self, name):
        assert metric_direction(name) == "lower_better"

    def test_neutral(self):
        assert metric_direction("config.n_blocks") == "neutral"

    def test_lower_better_wins_ties(self):
        # "rate" (higher) + "failure" (lower): conservative choice wins.
        assert metric_direction("convergence_failure_rate") == "lower_better"


class TestRelChange:
    def test_basic(self):
        assert _delta("x", 100.0, 150.0).rel_change == pytest.approx(0.5)
        assert _delta("x", 100.0, 50.0).rel_change == pytest.approx(-0.5)

    def test_zero_baseline(self):
        assert _delta("x", 0.0, 0.0).rel_change == 0.0
        assert _delta("x", 0.0, 5.0).rel_change == math.inf
        assert _delta("x", 0.0, -5.0).rel_change == -math.inf

    def test_inf_always_exceeds_threshold(self):
        delta = _delta("fail_count", 0.0, 3.0)
        assert delta.exceeds_threshold
        assert delta.regressed


class TestRegressed:
    def test_higher_better_drop_is_regression(self):
        assert _delta("steps_per_sec", 100.0, 60.0).regressed

    def test_higher_better_gain_is_not(self):
        assert not _delta("steps_per_sec", 100.0, 160.0).regressed

    def test_lower_better_rise_is_regression(self):
        assert _delta("total_duration_s", 1.0, 2.0).regressed

    def test_neutral_never_regresses(self):
        assert not _delta("config.n_blocks", 1.0, 100.0).regressed

    def test_within_threshold_is_not_flagged(self):
        delta = _delta("steps_per_sec", 100.0, 90.0)
        assert not delta.exceeds_threshold
        assert not delta.regressed


class TestFlatten:
    def test_run_report_shape(self):
        report = {
            "metrics": {
                "counters": {"cache.hits": 10},
                "gauges": {"refresh.busy": 0.5},
                "histograms": {
                    "spice.newton": {"count": 4, "sum": 12.0},
                    "empty.hist": {"count": 0, "sum": 0.0},
                },
            },
            "total_duration_s": 1.5,
        }
        flat = flatten_metrics(report)
        assert flat == {
            "cache.hits": 10.0,
            "refresh.busy": 0.5,
            "spice.newton.count": 4.0,
            "spice.newton.mean": 3.0,
            "empty.hist.count": 0.0,
            "total_duration_s": 1.5,
        }

    def test_benchmark_shape_skips_non_numerics(self):
        flat = flatten_metrics({
            "steps_per_sec": 120.5, "label": "fig5", "ok": True,
            "nested": {"x": 1}})
        assert flat == {"steps_per_sec": 120.5}

    def test_non_object_rejected(self):
        with pytest.raises(ConfigurationError, match="JSON object"):
            flatten_metrics([1, 2, 3])


class TestDiffReports:
    def test_identical_reports_have_zero_deltas(self):
        report = {"steps_per_sec": 100.0, "total_duration_s": 2.0}
        deltas = diff_reports(report, dict(report))
        assert len(deltas) == 2
        assert all(d.rel_change == 0.0 for d in deltas)
        assert not any(d.regressed for d in deltas)

    def test_injected_regression_is_flagged(self):
        before = {"steps_per_sec": 100.0, "total_duration_s": 2.0}
        after = {"steps_per_sec": 60.0, "total_duration_s": 5.0}
        deltas = diff_reports(before, after)
        assert all(d.regressed for d in deltas)

    def test_metrics_in_only_one_report_are_skipped(self):
        deltas = diff_reports({"a": 1.0, "shared": 2.0},
                              {"b": 1.0, "shared": 2.0})
        assert [d.name for d in deltas] == ["shared"]

    def test_threshold_must_be_positive(self):
        with pytest.raises(ConfigurationError, match="threshold"):
            diff_reports({}, {}, threshold=0.0)

    def test_deltas_sorted_by_name(self):
        deltas = diff_reports({"b": 1.0, "a": 1.0}, {"b": 1.0, "a": 1.0})
        assert [d.name for d in deltas] == ["a", "b"]


class TestLoadReport:
    def test_loads_json(self, tmp_path):
        path = tmp_path / "r.json"
        path.write_text('{"x": 1}')
        assert load_report(path) == {"x": 1}

    def test_missing_file_is_one_line_error(self, tmp_path):
        with pytest.raises(ConfigurationError, match="cannot read report"):
            load_report(tmp_path / "absent.json")

    def test_invalid_json_is_one_line_error(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{nope")
        with pytest.raises(ConfigurationError, match="not valid JSON"):
            load_report(path)


class TestFormatting:
    def test_verdict_line_counts(self):
        deltas = diff_reports({"steps_per_sec": 100.0, "neutral_thing": 1.0},
                              {"steps_per_sec": 50.0, "neutral_thing": 1.0})
        text = format_diff(deltas)
        assert "2 metric(s) compared" in text
        assert "1 regression(s)" in text
        assert "REGRESSION" in text

    def test_json_output_only_keeps_exceeding_deltas(self):
        import json
        deltas = diff_reports({"steps_per_sec": 100.0, "stable": 5.0},
                              {"steps_per_sec": 50.0, "stable": 5.0})
        doc = json.loads(diff_to_json(deltas))
        assert doc["schema"] == 1
        assert doc["metrics_compared"] == 2
        assert doc["regressions"] == 1
        assert [d["name"] for d in doc["deltas"]] == ["steps_per_sec"]
