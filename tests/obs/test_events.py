"""Tests for the bounded structured event log (repro.obs.events)."""

import json

import pytest

from repro.errors import ConfigurationError
from repro.obs.events import (DEFAULT_EVENT_CAPACITY, Event, EventLog,
                              NULL_EVENT_LOG)


class TestEvent:
    def test_to_dict_omits_empty_payload(self):
        assert Event(1.5, "a.b").to_dict() == {"t": 1.5, "kind": "a.b"}

    def test_to_dict_includes_payload(self):
        node = Event(1.5, "a.b", {"x": 1}).to_dict()
        assert node == {"t": 1.5, "kind": "a.b", "payload": {"x": 1}}

    def test_round_trip(self):
        original = Event(2.25, "cache.eviction", {"set": 3, "dirty": True})
        restored = Event.from_dict(original.to_dict())
        assert restored.t == original.t
        assert restored.kind == original.kind
        assert restored.payload == original.payload


class TestRing:
    def test_default_capacity(self):
        assert EventLog().capacity == DEFAULT_EVENT_CAPACITY

    def test_capacity_below_one_rejected(self):
        with pytest.raises(ConfigurationError, match="capacity"):
            EventLog(capacity=0)

    def test_keeps_newest_and_counts_drops(self):
        log = EventLog(capacity=3)
        for i in range(5):
            log.emit("tick.tock", i=i)
        assert len(log) == 3
        assert log.emitted == 5
        assert log.dropped == 2
        assert [e.payload["i"] for e in log.events()] == [2, 3, 4]

    def test_timestamps_are_monotonic(self):
        log = EventLog()
        for _ in range(10):
            log.emit("tick.tock")
        times = [e.t for e in log.events()]
        assert times == sorted(times)

    def test_kinds_summary_sorted(self):
        log = EventLog()
        log.emit("b.two")
        log.emit("a.one")
        log.emit("b.two")
        assert log.kinds() == {"a.one": 1, "b.two": 2}
        assert list(log.kinds()) == ["a.one", "b.two"]

    def test_reset_clears_ring_and_counters(self):
        log = EventLog(capacity=2)
        for i in range(4):
            log.emit("tick.tock", i=i)
        log.reset()
        assert len(log) == 0
        assert log.emitted == 0
        assert log.dropped == 0


class TestExtend:
    def test_preserves_order_and_returns_count(self):
        log = EventLog()
        appended = log.extend([
            {"t": 1.0, "kind": "a.one"},
            Event(2.0, "b.two", {"x": 1}),
            {"t": 3.0, "kind": "a.one", "payload": {"y": 2}},
        ])
        assert appended == 3
        assert [(e.t, e.kind) for e in log.events()] == [
            (1.0, "a.one"), (2.0, "b.two"), (3.0, "a.one")]
        assert log.events()[2].payload == {"y": 2}

    def test_extend_respects_ring_bound(self):
        log = EventLog(capacity=2)
        log.extend({"t": float(i), "kind": "tick.tock"} for i in range(5))
        assert len(log) == 2
        assert log.dropped == 3


class TestJsonlSink:
    def test_streams_every_event(self, tmp_path):
        path = tmp_path / "events.jsonl"
        log = EventLog(capacity=2, jsonl_path=path)
        for i in range(5):
            log.emit("tick.tock", i=i)
        log.close()
        lines = path.read_text().splitlines()
        # The ring keeps 2, the sink keeps all 5.
        assert len(lines) == 5
        assert [json.loads(line)["payload"]["i"] for line in lines] == [
            0, 1, 2, 3, 4]

    def test_creates_parent_directories(self, tmp_path):
        path = tmp_path / "deep" / "nested" / "events.jsonl"
        log = EventLog(jsonl_path=path)
        log.emit("tick.tock")
        log.close()
        assert path.exists()

    def test_unwritable_path_fails_at_construction(self, tmp_path):
        blocker = tmp_path / "file"
        blocker.write_text("")
        with pytest.raises(ConfigurationError, match="cannot open event sink"):
            EventLog(jsonl_path=blocker / "events.jsonl")

    def test_close_is_idempotent(self, tmp_path):
        log = EventLog(jsonl_path=tmp_path / "events.jsonl")
        log.close()
        log.close()

    def test_reset_keeps_sink_open(self, tmp_path):
        path = tmp_path / "events.jsonl"
        log = EventLog(jsonl_path=path)
        log.emit("tick.tock", i=0)
        log.reset()
        log.emit("tick.tock", i=1)
        log.close()
        assert len(path.read_text().splitlines()) == 2


class TestInjection:
    def test_instrumented_keeps_injected_empty_log(self):
        # Regression: EventLog has __len__, so an empty injected log is
        # falsy — instrumented() must still use it, not a fresh one.
        from repro import obs
        log = EventLog()
        with obs.instrumented(events=log):
            obs.event("a.b", x=1)
        assert log.emitted == 1
        assert log.events()[0].kind == "a.b"


class TestNullEventLog:
    def test_discards_everything(self):
        assert NULL_EVENT_LOG.emit("tick.tock", x=1) is None
        assert NULL_EVENT_LOG.extend([{"t": 0.0, "kind": "a.b"}]) == 0
        assert NULL_EVENT_LOG.events() == []
        assert NULL_EVENT_LOG.to_dicts() == []
        assert NULL_EVENT_LOG.kinds() == {}
        assert len(NULL_EVENT_LOG) == 0
        NULL_EVENT_LOG.close()
        NULL_EVENT_LOG.reset()
