"""Tests for trace/CSV/Prometheus exporters (repro.obs.export)."""

import json

import pytest

from repro.errors import ConfigurationError
from repro.obs.export import (EVENT_TID, EXPORT_FORMATS, SPAN_TID,
                              chrome_trace, render_csv, render_prometheus,
                              render_report, validate_chrome_trace)


def _report(**overrides):
    base = {
        "schema": 2,
        "command": "fig5",
        "fingerprint": "abc123",
        "total_duration_s": 0.5,
        "metrics": {
            "counters": {"cache.hits": 7},
            "gauges": {"refresh.busy": 0.25},
            "histograms": {
                "spice.newton": {"count": 2, "sum": 6.0,
                                 "buckets": [1.0, 5.0], "counts": [1, 1]},
            },
        },
        "spans": [
            {"name": "run", "start_s": 0.0, "duration_s": 0.5,
             "attrs": {"cycles": 100}, "children": [
                 {"name": "setup", "start_s": 0.0, "duration_s": 0.1,
                  "children": []},
                 {"name": "loop", "start_s": 0.1, "duration_s": 0.4,
                  "children": []},
             ]},
        ],
        "events": [
            {"t": 0.05, "kind": "refresh.dropped",
             "payload": {"index": 3, "cycle": 40}},
            {"t": 0.2, "kind": "cache.eviction",
             "payload": {"set": 1, "tag": 9, "dirty": True}},
        ],
        "timeseries": {
            "spice.newton.iterations": {
                "capacity": 256, "stride": 1, "count": 2, "sum": 6.0,
                "min": 2.0, "max": 4.0, "last": 4.0,
                "points": [[0.0, 2.0], [0.1, 4.0]]},
        },
    }
    base.update(overrides)
    return base


class TestChromeTrace:
    def test_produced_trace_validates(self):
        trace = chrome_trace(_report())
        assert validate_chrome_trace(trace) == []

    def test_spans_and_events_land_on_their_tracks(self):
        trace = chrome_trace(_report())
        spans = [e for e in trace["traceEvents"] if e["ph"] == "X"]
        instants = [e for e in trace["traceEvents"] if e["ph"] == "i"]
        assert {e["tid"] for e in spans} == {SPAN_TID}
        assert {e["tid"] for e in instants} == {EVENT_TID}
        assert [e["name"] for e in spans] == ["run", "setup", "loop"]
        assert [e["name"] for e in instants] == [
            "refresh.dropped", "cache.eviction"]

    def test_timestamps_are_microseconds_from_t0(self):
        trace = chrome_trace(_report())
        by_name = {e["name"]: e for e in trace["traceEvents"]
                   if e["ph"] in ("X", "i")}
        assert by_name["run"]["ts"] == 0.0
        assert by_name["run"]["dur"] == pytest.approx(500_000.0)
        assert by_name["loop"]["ts"] == pytest.approx(100_000.0)
        assert by_name["refresh.dropped"]["ts"] == pytest.approx(50_000.0)

    def test_event_payload_becomes_args(self):
        trace = chrome_trace(_report())
        instant = next(e for e in trace["traceEvents"]
                       if e.get("name") == "cache.eviction")
        assert instant["args"] == {"set": 1, "tag": 9, "dirty": True}

    def test_schema1_spans_get_sequential_layout(self):
        # Schema-1 spans carry no start_s: children are laid out
        # sequentially, preserving nesting exactly.
        report = _report(schema=1, events=[], spans=[
            {"name": "run", "duration_s": 0.5, "children": [
                {"name": "a", "duration_s": 0.2, "children": []},
                {"name": "b", "duration_s": 0.3, "children": []},
            ]},
        ])
        trace = chrome_trace(report)
        assert validate_chrome_trace(trace) == []
        by_name = {e["name"]: e for e in trace["traceEvents"]
                   if e["ph"] == "X"}
        assert by_name["a"]["ts"] == 0.0
        assert by_name["b"]["ts"] == pytest.approx(200_000.0)

    def test_empty_report_still_validates(self):
        trace = chrome_trace({"schema": 2, "spans": [], "events": []})
        assert validate_chrome_trace(trace) == []


class TestValidation:
    def test_missing_trace_events(self):
        assert validate_chrome_trace({}) == [
            "document has no traceEvents list"]

    def test_detects_missing_keys(self):
        problems = validate_chrome_trace({"traceEvents": [
            {"ph": "X", "name": "x", "ts": 0.0, "pid": 1, "tid": 1}]})
        assert any("has no dur" in p for p in problems)

    def test_detects_negative_duration(self):
        problems = validate_chrome_trace({"traceEvents": [
            {"ph": "X", "name": "x", "ts": 0.0, "dur": -1.0,
             "pid": 1, "tid": 1}]})
        assert any("negative" in p for p in problems)

    def test_detects_partial_overlap(self):
        problems = validate_chrome_trace({"traceEvents": [
            {"ph": "X", "name": "a", "ts": 0.0, "dur": 100.0,
             "pid": 1, "tid": 1},
            {"ph": "X", "name": "b", "ts": 50.0, "dur": 100.0,
             "pid": 1, "tid": 1}]})
        assert any("overlaps" in p for p in problems)

    def test_detects_non_monotonic_instants(self):
        problems = validate_chrome_trace({"traceEvents": [
            {"ph": "i", "s": "t", "name": "a", "ts": 10.0,
             "pid": 1, "tid": 2},
            {"ph": "i", "s": "t", "name": "b", "ts": 5.0,
             "pid": 1, "tid": 2}]})
        assert any("monotonic" in p for p in problems)

    def test_proper_nesting_accepted(self):
        assert validate_chrome_trace({"traceEvents": [
            {"ph": "X", "name": "outer", "ts": 0.0, "dur": 100.0,
             "pid": 1, "tid": 1},
            {"ph": "X", "name": "inner", "ts": 10.0, "dur": 50.0,
             "pid": 1, "tid": 1},
            {"ph": "X", "name": "sibling", "ts": 60.0, "dur": 40.0,
             "pid": 1, "tid": 1}]}) == []


class TestCsv:
    def test_covers_all_sections(self):
        rows = render_csv(_report()).splitlines()
        assert rows[0] == "section,name,key,value"
        sections = {row.split(",")[0] for row in rows[1:]}
        assert sections == {"counter", "gauge", "histogram", "timeseries",
                            "event"}

    def test_timeseries_points_are_rows(self):
        rows = [r for r in render_csv(_report()).splitlines()
                if r.startswith("timeseries,")]
        assert len(rows) == 2


class TestPrometheus:
    def test_counters_gauges_histograms(self):
        text = render_prometheus(_report())
        assert "# TYPE repro_cache_hits counter" in text
        assert "repro_cache_hits 7" in text
        assert "# TYPE repro_refresh_busy gauge" in text
        assert "repro_refresh_busy 0.25" in text
        assert '# TYPE repro_spice_newton histogram' in text
        assert 'repro_spice_newton_bucket{le="1"} 1' in text
        assert 'repro_spice_newton_bucket{le="+Inf"} 2' in text
        assert "repro_spice_newton_sum 6" in text
        assert "repro_spice_newton_count 2" in text

    def test_empty_report_renders_empty(self):
        assert render_prometheus({"metrics": {}}) == ""


class TestRenderReport:
    @pytest.mark.parametrize("fmt", EXPORT_FORMATS)
    def test_every_format_renders(self, fmt):
        text = render_report(_report(), fmt)
        assert text
        if fmt == "chrome":
            assert json.loads(text)["traceEvents"]

    def test_unknown_format_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown export format"):
            render_report(_report(), "xml")
