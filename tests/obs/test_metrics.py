"""Metrics registry semantics: counters, gauges, histograms, reset."""

import pytest

from repro import obs
from repro.errors import ConfigurationError
from repro.obs.metrics import (DEFAULT_BUCKETS, MetricsRegistry,
                               NULL_REGISTRY)


@pytest.fixture
def registry():
    return MetricsRegistry()


class TestCounter:
    def test_starts_at_zero_and_accumulates(self, registry):
        c = registry.counter("hits")
        assert c.value == 0.0
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5

    def test_same_name_same_instance(self, registry):
        assert registry.counter("x") is registry.counter("x")

    def test_negative_increment_rejected(self, registry):
        with pytest.raises(ConfigurationError, match="cannot decrease"):
            registry.counter("x").inc(-1)


class TestGauge:
    def test_set_inc_dec(self, registry):
        g = registry.gauge("level")
        g.set(10)
        g.inc(5)
        g.dec(2)
        assert g.value == 13.0

    def test_gauges_may_go_negative(self, registry):
        g = registry.gauge("delta")
        g.dec(3)
        assert g.value == -3.0


class TestHistogram:
    def test_observations_land_in_buckets(self, registry):
        h = registry.histogram("lat", buckets=(1, 10, 100))
        for value in (0.5, 1.0, 5, 50, 1000):
            h.observe(value)
        # bucket upper bounds are inclusive: counts = [<=1, <=10, <=100, inf]
        assert h.counts == [2, 1, 1, 1]
        assert h.count == 5
        assert h.sum == pytest.approx(1056.5)
        assert h.mean == pytest.approx(1056.5 / 5)

    def test_default_buckets(self, registry):
        h = registry.histogram("iters")
        assert h.buckets == tuple(float(b) for b in DEFAULT_BUCKETS)

    def test_bucket_mismatch_rejected(self, registry):
        registry.histogram("lat", buckets=(1, 2))
        with pytest.raises(ConfigurationError, match="already registered"):
            registry.histogram("lat", buckets=(1, 2, 3))

    def test_unsorted_buckets_rejected(self, registry):
        with pytest.raises(ConfigurationError, match="ascend"):
            registry.histogram("bad", buckets=(5, 1))

    def test_empty_histogram_mean(self, registry):
        assert registry.histogram("empty").mean == 0.0


class TestRegistry:
    def test_name_bound_to_one_kind(self, registry):
        registry.counter("x")
        with pytest.raises(ConfigurationError, match="another kind"):
            registry.gauge("x")
        with pytest.raises(ConfigurationError, match="another kind"):
            registry.histogram("x")

    def test_snapshot_shape(self, registry):
        registry.counter("c").inc(2)
        registry.gauge("g").set(1.5)
        registry.histogram("h", buckets=(1,)).observe(0.5)
        snap = registry.snapshot()
        assert snap["counters"] == {"c": 2.0}
        assert snap["gauges"] == {"g": 1.5}
        assert snap["histograms"]["h"] == {
            "buckets": [1.0], "counts": [1, 0], "sum": 0.5, "count": 1}

    def test_reset_drops_everything(self, registry):
        registry.counter("c").inc()
        registry.gauge("g").set(1)
        registry.histogram("h").observe(1)
        registry.reset()
        assert list(registry.names()) == []
        assert registry.counter("c").value == 0.0

    def test_independent_instances(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("x").inc()
        assert b.counter("x").value == 0.0


class TestMergeSnapshot:
    def test_counters_accumulate_gauges_last_write_wins(self, registry):
        registry.counter("c").inc(2)
        registry.gauge("g").set(1.0)
        other = MetricsRegistry()
        other.counter("c").inc(3)
        other.gauge("g").set(9.0)
        registry.merge_snapshot(other.snapshot())
        assert registry.counter("c").value == 5.0
        assert registry.gauge("g").value == 9.0

    def test_histograms_merge_bucket_wise(self, registry):
        registry.histogram("h", buckets=(1, 10)).observe(0.5)
        other = MetricsRegistry()
        other.histogram("h", buckets=(1, 10)).observe(5)
        registry.merge_snapshot(other.snapshot())
        merged = registry.histogram("h", buckets=(1, 10))
        assert merged.counts == [1, 1, 0]
        assert merged.count == 2
        assert merged.sum == pytest.approx(5.5)

    def test_empty_snapshot_is_a_noop(self, registry):
        registry.counter("c").inc()
        before = registry.snapshot()
        registry.merge_snapshot({})
        registry.merge_snapshot(MetricsRegistry().snapshot())
        assert registry.snapshot() == before

    def test_kind_conflict_rejected(self, registry):
        registry.gauge("x")
        other = MetricsRegistry()
        other.counter("x").inc()
        with pytest.raises(ConfigurationError, match="another kind"):
            registry.merge_snapshot(other.snapshot())

    def test_histogram_bucket_mismatch_rejected(self, registry):
        registry.histogram("h", buckets=(1, 10)).observe(1)
        other = MetricsRegistry()
        other.histogram("h", buckets=(1, 10, 100)).observe(1)
        with pytest.raises(ConfigurationError, match="already registered"):
            registry.merge_snapshot(other.snapshot())

    def test_merge_into_fresh_registry_round_trips(self, registry):
        registry.counter("c").inc(4)
        registry.gauge("g").set(2.5)
        registry.histogram("h", buckets=(1,)).observe(0.5)
        target = MetricsRegistry()
        target.merge_snapshot(registry.snapshot())
        assert target.snapshot() == registry.snapshot()


class TestNullRegistry:
    def test_discards_everything(self):
        NULL_REGISTRY.counter("x").inc(5)
        NULL_REGISTRY.gauge("y").set(2)
        NULL_REGISTRY.histogram("z").observe(1)
        snap = NULL_REGISTRY.snapshot()
        assert snap == {"counters": {}, "gauges": {}, "histograms": {}}


class TestGlobalState:
    def test_disabled_by_default_returns_null(self):
        assert not obs.is_enabled()
        assert obs.metrics() is NULL_REGISTRY

    def test_instrumented_swaps_and_restores(self):
        before = obs.metrics()
        with obs.instrumented() as registry:
            assert obs.is_enabled()
            obs.metrics().counter("x").inc()
            assert registry.counter("x").value == 1.0
        assert not obs.is_enabled()
        assert obs.metrics() is before

    def test_instrumented_restores_on_exception(self):
        with pytest.raises(RuntimeError):
            with obs.instrumented():
                raise RuntimeError("boom")
        assert not obs.is_enabled()

    def test_injectable_registry(self):
        mine = MetricsRegistry()
        with obs.instrumented(registry=mine):
            obs.metrics().counter("c").inc(4)
        assert mine.counter("c").value == 4.0
