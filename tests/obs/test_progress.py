"""Tests for the live sweep progress line (repro.obs.progress)."""

import argparse
import io

from repro.obs.progress import SweepProgress, _format_seconds, \
    progress_for_args


def _progress(**kwargs):
    kwargs.setdefault("stream", io.StringIO())
    kwargs.setdefault("enabled", True)
    kwargs.setdefault("min_interval", 0.0)
    return SweepProgress(**kwargs)


class TestStatusLine:
    def test_shows_completed_over_total(self):
        progress = _progress(total=100, label="mc")
        progress.advance(completed=7)
        assert progress.status_line().startswith("mc:    7/100")

    def test_failures_shown_only_when_present(self):
        progress = _progress(total=10)
        progress.advance(completed=1)
        assert "failures" not in progress.status_line()
        progress.advance(failed=2)
        assert "failures 2" in progress.status_line()

    def test_rate_and_eta_appear_after_fresh_work(self):
        progress = _progress(total=10)
        progress._started -= 10.0  # pretend 10s elapsed
        progress.advance(completed=5)
        line = progress.status_line()
        assert "/s" in line
        assert "eta" in line

    def test_restored_items_excluded_from_rate(self):
        progress = _progress(total=100)
        progress._started -= 10.0
        progress.note_restored(50)
        assert progress.completed == 50
        assert progress._rate() == 0.0  # nothing fresh yet
        progress.advance(completed=10)
        assert progress._rate() > 0


class TestRendering:
    def test_writes_self_overwriting_line(self):
        stream = io.StringIO()
        progress = _progress(total=5, stream=stream)
        progress.advance(completed=1)
        progress.advance(completed=1)
        output = stream.getvalue()
        assert output.count("\r\x1b[2K") == 2
        assert "\n" not in output

    def test_finish_releases_the_line(self):
        stream = io.StringIO()
        progress = _progress(total=5, stream=stream)
        progress.advance(completed=5)
        progress.finish()
        assert stream.getvalue().endswith("\n")

    def test_disabled_writes_nothing(self):
        stream = io.StringIO()
        progress = SweepProgress(total=5, stream=stream, enabled=False)
        progress.advance(completed=5)
        progress.finish()
        assert stream.getvalue() == ""

    def test_auto_disables_on_non_tty(self):
        assert SweepProgress(total=5, stream=io.StringIO()).enabled is False

    def test_min_interval_throttles(self):
        stream = io.StringIO()
        progress = _progress(total=100, stream=stream)
        progress.advance(completed=1)  # renders
        progress.min_interval = 3600.0
        for _ in range(50):
            progress.advance(completed=1)  # all throttled
        assert stream.getvalue().count("\r\x1b[2K") == 1


class TestFormatSeconds:
    def test_seconds_minutes_hours(self):
        assert _format_seconds(42.0) == "42s"
        assert _format_seconds(600.0) == "10.0m"
        assert _format_seconds(7200.0) == "2.0h"


class TestProgressForArgs:
    def test_progress_flag_forces_on(self):
        args = argparse.Namespace(progress=True)
        assert progress_for_args(args, total=5, label="mc").enabled is True

    def test_without_flag_auto_detects_tty(self):
        args = argparse.Namespace(progress=False)
        progress = progress_for_args(args, total=5, label="mc")
        # stderr in the test harness is not a TTY.
        assert progress.enabled is False
