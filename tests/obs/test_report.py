"""Run-report emitter: structure, fingerprint stability, file output."""

import json

import pytest

from repro import __version__, obs
from repro.obs.events import EventLog
from repro.obs.metrics import MetricsRegistry
from repro.obs.report import (REPORT_SCHEMA, build_run_report,
                              config_fingerprint, write_run_report)
from repro.obs.timeseries import TimeSeriesRecorder
from repro.obs.tracing import Tracer


@pytest.fixture
def populated():
    registry = MetricsRegistry()
    tracer = Tracer()
    with tracer.span("simulate", cycles=10):
        with tracer.span("refresh.run"):
            registry.counter("refresh.stall_cycles").inc(42)
    registry.histogram("iters", buckets=(1, 10)).observe(3)
    return registry, tracer


class TestFingerprint:
    def test_stable_under_key_order(self):
        assert (config_fingerprint({"a": 1, "b": 2})
                == config_fingerprint({"b": 2, "a": 1}))

    def test_sensitive_to_values(self):
        assert (config_fingerprint({"a": 1})
                != config_fingerprint({"a": 2}))

    def test_non_json_values_fingerprintable(self):
        class Odd:
            def __repr__(self):
                return "Odd()"
        assert isinstance(config_fingerprint({"x": Odd()}), str)


class TestBuildReport:
    def test_report_structure(self, populated):
        registry, tracer = populated
        report = build_run_report("fig5", {"cycles": 10}, registry, tracer)
        assert report["schema"] == REPORT_SCHEMA
        assert report["command"] == "fig5"
        assert report["config"] == {"cycles": 10}
        assert report["repro_version"] == __version__
        assert report["span_count"] == 2
        assert report["spans"][0]["name"] == "simulate"
        assert report["spans"][0]["children"][0]["name"] == "refresh.run"
        counters = report["metrics"]["counters"]
        assert counters["refresh.stall_cycles"] == 42.0
        assert report["total_duration_s"] >= 0.0

    def test_report_is_json_serialisable(self, populated):
        registry, tracer = populated
        report = build_run_report("cmd", {"obj": object()}, registry, tracer)
        json.dumps(report)  # must not raise


class TestWriteReport:
    def test_writes_valid_json(self, populated, tmp_path):
        registry, tracer = populated
        path = tmp_path / "nested" / "run.json"
        returned = write_run_report(path, "fig5", {"cycles": 10},
                                    registry, tracer)
        on_disk = json.loads(path.read_text())
        assert on_disk == json.loads(json.dumps(returned))
        assert on_disk["command"] == "fig5"

    def test_prebuilt_report_passthrough(self, populated, tmp_path):
        registry, tracer = populated
        report = build_run_report("x", {}, registry, tracer)
        path = tmp_path / "run.json"
        write_run_report(path, "x", {}, report=report)
        assert json.loads(path.read_text())["command"] == "x"

    def test_requires_sources_or_report(self, tmp_path):
        with pytest.raises(ValueError, match="registry and tracer"):
            write_run_report(tmp_path / "r.json", "x", {})


class TestTelemetrySections:
    def test_events_and_timeseries_in_report(self, populated):
        registry, tracer = populated
        events = EventLog(capacity=2)
        for i in range(3):
            events.emit("refresh.dropped", index=i, cycle=i * 10)
        timeseries = TimeSeriesRecorder()
        timeseries.series("spice.newton.iterations").sample(0.0, 3.0)
        report = build_run_report("fig5", {}, registry, tracer,
                                  events=events, timeseries=timeseries)
        assert [e["kind"] for e in report["events"]] == [
            "refresh.dropped", "refresh.dropped"]
        assert report["event_count"] == 3
        assert report["events_dropped"] == 1
        series = report["timeseries"]["spice.newton.iterations"]
        assert series["count"] == 1
        assert series["last"] == 3.0

    def test_without_telemetry_sections_are_empty(self, populated):
        registry, tracer = populated
        report = build_run_report("fig5", {}, registry, tracer)
        assert report["events"] == []
        assert report["timeseries"] == {}
        assert "event_count" not in report


class TestSchemaRoundTrip:
    def test_full_report_survives_disk_round_trip(self, populated, tmp_path):
        registry, tracer = populated
        events = EventLog()
        events.emit("cache.eviction", set=1, tag=2, dirty=False)
        timeseries = TimeSeriesRecorder()
        for i in range(10):
            timeseries.series("refresh.busy_fraction").sample(float(i),
                                                              i / 10.0)
        path = tmp_path / "run.json"
        written = write_run_report(path, "fig5", {"cycles": 10},
                                   registry, tracer, events=events,
                                   timeseries=timeseries)
        restored = json.loads(path.read_text())
        assert restored == json.loads(json.dumps(written))
        assert restored["schema"] == REPORT_SCHEMA

        # Every schema-2 section is reusable after the round trip:
        # metrics and timeseries fold losslessly into fresh registries,
        # and events reload as Event objects.
        merged = MetricsRegistry()
        merged.merge_snapshot(restored["metrics"])
        assert merged.snapshot() == restored["metrics"]
        recorder = TimeSeriesRecorder()
        recorder.merge_snapshot(restored["timeseries"])
        assert recorder.snapshot() == restored["timeseries"]
        reloaded = EventLog()
        assert reloaded.extend(restored["events"]) == 1
        assert reloaded.events()[0].kind == "cache.eviction"


class TestModuleRunReport:
    def test_run_report_uses_global_state(self):
        with obs.instrumented():
            with obs.span("simulate"):
                obs.metrics().counter("c").inc()
            report = obs.run_report("cmd", {"k": "v"})
        assert report["spans"][0]["name"] == "simulate"
        assert report["metrics"]["counters"]["c"] == 1.0
