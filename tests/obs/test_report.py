"""Run-report emitter: structure, fingerprint stability, file output."""

import json

import pytest

from repro import __version__, obs
from repro.obs.metrics import MetricsRegistry
from repro.obs.report import (REPORT_SCHEMA, build_run_report,
                              config_fingerprint, write_run_report)
from repro.obs.tracing import Tracer


@pytest.fixture
def populated():
    registry = MetricsRegistry()
    tracer = Tracer()
    with tracer.span("simulate", cycles=10):
        with tracer.span("refresh.run"):
            registry.counter("refresh.stall_cycles").inc(42)
    registry.histogram("iters", buckets=(1, 10)).observe(3)
    return registry, tracer


class TestFingerprint:
    def test_stable_under_key_order(self):
        assert (config_fingerprint({"a": 1, "b": 2})
                == config_fingerprint({"b": 2, "a": 1}))

    def test_sensitive_to_values(self):
        assert (config_fingerprint({"a": 1})
                != config_fingerprint({"a": 2}))

    def test_non_json_values_fingerprintable(self):
        class Odd:
            def __repr__(self):
                return "Odd()"
        assert isinstance(config_fingerprint({"x": Odd()}), str)


class TestBuildReport:
    def test_report_structure(self, populated):
        registry, tracer = populated
        report = build_run_report("fig5", {"cycles": 10}, registry, tracer)
        assert report["schema"] == REPORT_SCHEMA
        assert report["command"] == "fig5"
        assert report["config"] == {"cycles": 10}
        assert report["repro_version"] == __version__
        assert report["span_count"] == 2
        assert report["spans"][0]["name"] == "simulate"
        assert report["spans"][0]["children"][0]["name"] == "refresh.run"
        counters = report["metrics"]["counters"]
        assert counters["refresh.stall_cycles"] == 42.0
        assert report["total_duration_s"] >= 0.0

    def test_report_is_json_serialisable(self, populated):
        registry, tracer = populated
        report = build_run_report("cmd", {"obj": object()}, registry, tracer)
        json.dumps(report)  # must not raise


class TestWriteReport:
    def test_writes_valid_json(self, populated, tmp_path):
        registry, tracer = populated
        path = tmp_path / "nested" / "run.json"
        returned = write_run_report(path, "fig5", {"cycles": 10},
                                    registry, tracer)
        on_disk = json.loads(path.read_text())
        assert on_disk == json.loads(json.dumps(returned))
        assert on_disk["command"] == "fig5"

    def test_prebuilt_report_passthrough(self, populated, tmp_path):
        registry, tracer = populated
        report = build_run_report("x", {}, registry, tracer)
        path = tmp_path / "run.json"
        write_run_report(path, "x", {}, report=report)
        assert json.loads(path.read_text())["command"] == "x"

    def test_requires_sources_or_report(self, tmp_path):
        with pytest.raises(ValueError, match="registry and tracer"):
            write_run_report(tmp_path / "r.json", "x", {})


class TestModuleRunReport:
    def test_run_report_uses_global_state(self):
        with obs.instrumented():
            with obs.span("simulate"):
                obs.metrics().counter("c").inc()
            report = obs.run_report("cmd", {"k": "v"})
        assert report["spans"][0]["name"] == "simulate"
        assert report["metrics"]["counters"]["c"] == 1.0
