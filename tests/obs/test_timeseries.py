"""Tests for the decimating time-series recorder (repro.obs.timeseries)."""

import pytest

from repro.errors import ConfigurationError
from repro.obs.timeseries import (DEFAULT_CAPACITY, NULL_TIMESERIES,
                                  TimeSeries, TimeSeriesRecorder)


def _fill(series, n, value=lambda i: float(i)):
    for i in range(n):
        series.sample(float(i), value(i))


class TestDecimation:
    def test_points_stay_bounded(self):
        series = TimeSeries("s", capacity=8)
        _fill(series, 10_000)
        assert len(series.points) < series.capacity

    def test_stride_doubles_per_decimation(self):
        series = TimeSeries("s", capacity=4)
        _fill(series, 4)  # hits capacity exactly once
        assert series.stride == 2
        assert len(series.points) == 2

    def test_points_spread_over_whole_run(self):
        series = TimeSeries("s", capacity=16)
        _fill(series, 10_000)
        times = [t for t, _ in series.points]
        assert times == sorted(times)
        assert times[0] < 1_000
        assert times[-1] > 8_000

    def test_stats_exact_regardless_of_decimation(self):
        series = TimeSeries("s", capacity=4)
        n = 1000
        _fill(series, n)
        assert series.count == n
        assert series.sum == sum(range(n))
        assert series.min == 0.0
        assert series.max == float(n - 1)
        assert series.last == float(n - 1)
        assert series.mean == pytest.approx((n - 1) / 2)

    def test_empty_series_stats(self):
        series = TimeSeries("s")
        assert series.count == 0
        assert series.min == 0.0
        assert series.max == 0.0
        assert series.mean == 0.0
        assert series.last is None

    def test_capacity_below_two_rejected(self):
        with pytest.raises(ConfigurationError, match="capacity"):
            TimeSeries("s", capacity=1)


class TestSnapshotAndMerge:
    def test_snapshot_round_trip(self):
        series = TimeSeries("s", capacity=8)
        _fill(series, 5)
        snap = series.snapshot()
        assert snap["count"] == 5
        assert snap["points"] == [[float(i), float(i)] for i in range(5)]

    def test_merge_is_exact_on_stats(self):
        a = TimeSeries("s", capacity=8)
        b = TimeSeries("s", capacity=8)
        _fill(a, 100)
        _fill(b, 50, value=lambda i: float(i) + 1000.0)
        a.merge(b.snapshot())
        assert a.count == 150
        assert a.sum == sum(range(100)) + sum(i + 1000.0 for i in range(50))
        assert a.min == 0.0
        assert a.max == 1049.0
        assert a.last == 1049.0  # last-write-wins

    def test_merge_empty_snapshot_is_noop(self):
        a = TimeSeries("s")
        _fill(a, 3)
        before = a.snapshot()
        a.merge(TimeSeries("s").snapshot())
        assert a.snapshot() == before

    def test_merge_is_deterministic_in_given_order(self):
        def merged(order):
            target = TimeSeries("s", capacity=8)
            for snap in order:
                target.merge(snap)
            return target.snapshot()

        parts = []
        for offset in (0, 100, 200):
            part = TimeSeries("s", capacity=8)
            _fill(part, 6, value=lambda i, o=offset: float(i + o))
            parts.append(part.snapshot())
        assert merged(parts) == merged(parts)

    def test_merge_rebounds_points(self):
        a = TimeSeries("s", capacity=4)
        b = TimeSeries("s", capacity=4)
        _fill(a, 3)
        _fill(b, 3)
        a.merge(b.snapshot())
        assert len(a.points) < a.capacity


class TestRecorder:
    def test_series_created_on_first_use(self):
        recorder = TimeSeriesRecorder()
        series = recorder.series("a.one")
        assert series is recorder.series("a.one")
        assert series.capacity == DEFAULT_CAPACITY

    def test_capacity_conflict_rejected(self):
        recorder = TimeSeriesRecorder()
        recorder.series("a.one", capacity=16)
        recorder.series("a.one")  # no capacity: no conflict
        with pytest.raises(ConfigurationError, match="already registered"):
            recorder.series("a.one", capacity=32)

    def test_snapshot_sorted_by_name(self):
        recorder = TimeSeriesRecorder()
        recorder.series("b.two").sample(0.0, 1.0)
        recorder.series("a.one").sample(0.0, 1.0)
        assert list(recorder.snapshot()) == ["a.one", "b.two"]

    def test_merge_snapshot_creates_missing_series(self):
        source = TimeSeriesRecorder()
        source.series("a.one", capacity=16).sample(1.0, 2.0)
        target = TimeSeriesRecorder()
        target.merge_snapshot(source.snapshot())
        merged = target.series("a.one")
        assert merged.capacity == 16
        assert merged.count == 1
        assert merged.last == 2.0

    def test_reset(self):
        recorder = TimeSeriesRecorder()
        recorder.series("a.one").sample(0.0, 1.0)
        recorder.reset()
        assert recorder.snapshot() == {}


class TestNullRecorder:
    def test_discards_everything(self):
        series = NULL_TIMESERIES.series("anything", capacity=999)
        series.sample(0.0, 1.0)
        assert series.count == 0
        assert series.points == []
        assert list(NULL_TIMESERIES.names()) == []
        assert NULL_TIMESERIES.snapshot() == {}
        NULL_TIMESERIES.merge_snapshot({})
        NULL_TIMESERIES.reset()
