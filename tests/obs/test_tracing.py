"""Span tracing: nesting, exception safety, the disabled fast path."""

import pytest

from repro import obs
from repro.obs.tracing import NOOP_SPAN, Tracer, format_span_tree


@pytest.fixture
def tracer():
    return Tracer()


class TestNesting:
    def test_single_span_becomes_root(self, tracer):
        with tracer.span("solve"):
            pass
        roots = tracer.finished_roots()
        assert [r.name for r in roots] == ["solve"]
        assert roots[0].duration >= 0.0

    def test_children_attach_to_open_parent(self, tracer):
        with tracer.span("outer"):
            with tracer.span("inner.a"):
                pass
            with tracer.span("inner.b"):
                with tracer.span("leaf"):
                    pass
        (root,) = tracer.finished_roots()
        assert [c.name for c in root.children] == ["inner.a", "inner.b"]
        assert root.children[1].children[0].name == "leaf"
        assert root.total_spans() == 4

    def test_sequential_roots(self, tracer):
        with tracer.span("first"):
            pass
        with tracer.span("second"):
            pass
        assert [r.name for r in tracer.finished_roots()] == [
            "first", "second"]

    def test_child_duration_within_parent(self, tracer):
        with tracer.span("outer"):
            with tracer.span("inner"):
                sum(range(1000))
        (root,) = tracer.finished_roots()
        assert root.children[0].duration <= root.duration

    def test_attrs_and_set_attr(self, tracer):
        with tracer.span("run", cycles=100) as span:
            span.set_attr("stalls", 7)
        (root,) = tracer.finished_roots()
        assert root.attrs == {"cycles": 100, "stalls": 7}

    def test_find(self, tracer):
        with tracer.span("a"):
            with tracer.span("b"):
                pass
        (root,) = tracer.finished_roots()
        assert root.find("b").name == "b"
        assert root.find("missing") is None


class TestExceptionSafety:
    def test_span_closed_and_tagged_on_exception(self, tracer):
        with pytest.raises(ValueError):
            with tracer.span("outer"):
                with tracer.span("inner"):
                    raise ValueError("boom")
        (root,) = tracer.finished_roots()
        assert root.error == "ValueError"
        assert root.children[0].error == "ValueError"
        assert tracer.active is None  # stack fully unwound

    def test_tracer_usable_after_exception(self, tracer):
        with pytest.raises(ValueError):
            with tracer.span("bad"):
                raise ValueError
        with tracer.span("good"):
            pass
        assert [r.name for r in tracer.finished_roots()] == ["bad", "good"]

    def test_exception_not_swallowed(self, tracer):
        with pytest.raises(KeyError):
            with tracer.span("s"):
                raise KeyError("k")


class TestSerialisation:
    def test_to_dict_round_trip(self, tracer):
        with tracer.span("outer", kind="test"):
            with tracer.span("inner"):
                pass
        (node,) = tracer.to_dict()
        assert node["name"] == "outer"
        assert node["attrs"] == {"kind": "test"}
        assert node["children"][0]["name"] == "inner"
        assert "children" not in node["children"][0]

    def test_format_span_tree(self, tracer):
        with tracer.span("outer"):
            with tracer.span("inner", n=3):
                pass
        text = format_span_tree(tracer.finished_roots())
        assert "outer" in text
        assert "  inner" in text
        assert "n=3" in text

    def test_reset(self, tracer):
        with tracer.span("s"):
            pass
        tracer.reset()
        assert tracer.finished_roots() == []
        assert tracer.total_spans() == 0


class TestDisabledPath:
    def test_span_returns_noop_when_disabled(self):
        assert not obs.is_enabled()
        assert obs.span("anything", key="value") is NOOP_SPAN

    def test_noop_span_is_harmless(self):
        with obs.span("disabled") as span:
            span.set_attr("x", 1)
        assert obs.tracer().finished_roots() == []

    def test_noop_span_does_not_swallow(self):
        with pytest.raises(RuntimeError):
            with obs.span("disabled"):
                raise RuntimeError

    def test_enabled_records_through_module_api(self):
        with obs.instrumented():
            with obs.span("top", a=1):
                with obs.span("child"):
                    pass
            roots = obs.tracer().finished_roots()
            assert roots[0].name == "top"
            assert roots[0].children[0].name == "child"
        # The instrumented() exit restored the previous (empty) tracer.
        assert obs.tracer().finished_roots() == []
