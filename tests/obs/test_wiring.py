"""The instrumentation actually wired into the simulation stack."""

import numpy as np
import pytest

from repro import FastDramDesign, obs
from repro.errors import ConvergenceError


class TestRefreshWiring:
    def test_run_publishes_counters_and_span(self):
        from repro.refresh import (MonoblockRefresh, RefreshSimulator,
                                   uniform_random_trace)
        rng = np.random.default_rng(7)
        trace = uniform_random_trace(5000, 16, 0.5, rng)
        policy = MonoblockRefresh(n_blocks=16, rows_per_block=8,
                                  refresh_period_cycles=2000)
        with obs.instrumented() as registry:
            stats = RefreshSimulator(policy).run(trace)
        snap = registry.snapshot()
        assert snap["counters"]["refresh.stall_cycles"] == stats.stall_cycles
        assert (snap["counters"]["refresh.refreshes_issued"]
                == stats.refreshes_issued)
        assert (snap["gauges"]["refresh.busy_fraction.MonoblockRefresh"]
                == pytest.approx(stats.busy_fraction))
        roots = obs.tracer()  # restored after instrumented() exits
        assert roots.finished_roots() == []

    def test_run_span_recorded(self):
        from repro.refresh import (LocalizedRefresh, RefreshSimulator,
                                   uniform_random_trace)
        rng = np.random.default_rng(7)
        trace = uniform_random_trace(2000, 16, 0.3, rng)
        policy = LocalizedRefresh(n_blocks=16, rows_per_block=8,
                                  refresh_period_cycles=2000)
        tracer = obs.Tracer()
        with obs.instrumented(tracer=tracer):
            RefreshSimulator(policy).run(trace)
        (root,) = tracer.finished_roots()
        assert root.name == "refresh.run"
        assert root.attrs["policy"] == "LocalizedRefresh"


class TestSpiceWiring:
    def _rc_circuit(self):
        from repro.spice import Capacitor, Circuit, Resistor, VoltageSource, dc
        c = Circuit("rc")
        c.add(VoltageSource("v1", "in", "0", dc(1.0)))
        c.add(Resistor("r1", "in", "out", 1e3))
        c.add(Capacitor("c1", "out", "0", 1e-12))
        return c

    def test_transient_records_span_and_iterations(self):
        from repro.spice import simulate_transient
        tracer = obs.Tracer()
        with obs.instrumented(tracer=tracer) as registry:
            simulate_transient(self._rc_circuit(), 1e-9, 1e-11)
        (root,) = tracer.finished_roots()
        assert root.name == "spice.transient"
        assert root.attrs["circuit"] == "rc"
        snap = registry.snapshot()
        assert snap["counters"]["spice.timesteps"] == 100
        hist = snap["histograms"]["spice.newton.iterations"]
        assert hist["count"] == 100  # one observation per output timestep
        # The LU cache counters split every fast-path solve.
        assert (snap["counters"].get("spice.lu.reuse", 0)
                + snap["counters"].get("spice.lu.refactor", 0)) > 0

    def test_convergence_error_carries_diagnostics(self):
        exc = ConvergenceError("Newton failed", time=1.5e-9,
                               iterations=250, worst_node="gbl")
        message = str(exc)
        assert "t=1.5e-09s" in message
        assert "250 Newton iterations" in message
        assert "'gbl'" in message
        assert exc.time == 1.5e-9
        assert exc.iterations == 250
        assert exc.worst_node == "gbl"

    def test_convergence_error_plain_message_unchanged(self):
        assert str(ConvergenceError("plain")) == "plain"


class TestCacheWiring:
    def test_hierarchy_run_publishes_per_level_gauges(self):
        from repro.cache import Cache, CacheHierarchy, HierarchyLevel
        from repro.cache.workloads import AddressTrace
        from repro.units import kb
        design = FastDramDesign()
        levels = [
            HierarchyLevel("L1", Cache(1024), design.build(128 * kb,
                           retention_override=1e-3)),
            HierarchyLevel("L2", Cache(8192), design.build(512 * kb,
                           retention_override=1e-3)),
        ]
        hierarchy = CacheHierarchy(levels=levels)
        addresses = np.arange(2000) % 4096
        trace = AddressTrace(addresses=addresses,
                             writes=np.zeros(2000, dtype=bool))
        tracer = obs.Tracer()
        with obs.instrumented(tracer=tracer) as registry:
            stats = hierarchy.run(trace)
        snap = registry.snapshot()
        assert snap["counters"]["hierarchy.accesses"] == stats.accesses
        l1 = snap["gauges"]
        assert l1["cache.L1.hits"] == levels[0].cache.stats.hits
        assert (l1["cache.L1.misses"]
                == levels[0].cache.stats.accesses
                - levels[0].cache.stats.hits)
        assert "cache.L2.evictions" in l1
        (root,) = tracer.finished_roots()
        assert root.name == "hierarchy.run"


class TestMacroWiring:
    def test_build_and_summary_record_spans_and_gauges(self):
        from repro.units import kb
        tracer = obs.Tracer()
        with obs.instrumented(tracer=tracer) as registry:
            macro = FastDramDesign().build(128 * kb,
                                           retention_override=1e-3)
            summary = macro.summary()
        roots = tracer.finished_roots()
        assert roots[0].name == "macro.build"
        summary_span = roots[1]
        assert summary_span.name == "macro.summary"
        child_names = {c.name for c in summary_span.children}
        assert {"macro.timing", "macro.energy", "macro.static"} <= child_names
        snap = registry.snapshot()
        assert snap["counters"]["macro.builds"] == 1.0
        assert (snap["gauges"]["macro.access_time_s"]
                == pytest.approx(summary["access_time_s"]))
