"""Property-based tests of the cache and refresh substrates."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache import Cache
from repro.refresh import (
    LocalizedRefresh,
    MonoblockRefresh,
    RefreshSimulator,
    uniform_random_trace,
)


class TestCacheInvariants:
    @given(
        ways=st.sampled_from([1, 2, 4, 8]),
        line_words=st.sampled_from([1, 4, 8]),
        sets=st.sampled_from([2, 8, 32]),
        addresses=st.lists(st.integers(0, 10_000), min_size=1, max_size=300),
    )
    @settings(max_examples=40, deadline=None)
    def test_capacity_never_exceeded(self, ways, line_words, sets, addresses):
        cache = Cache(capacity_words=ways * line_words * sets, ways=ways,
                      line_words=line_words)
        for address in addresses:
            cache.access(address)
        assert cache.resident_lines() <= ways * sets

    @given(addresses=st.lists(st.integers(0, 1000), min_size=1,
                              max_size=300))
    @settings(max_examples=40, deadline=None)
    def test_immediate_reaccess_always_hits(self, addresses):
        cache = Cache(capacity_words=256, ways=4, line_words=8)
        for address in addresses:
            cache.access(address)
            assert cache.access(address).hit

    @given(addresses=st.lists(st.integers(0, 5000), min_size=1,
                              max_size=200),
           writes=st.lists(st.booleans(), min_size=200, max_size=200))
    @settings(max_examples=30, deadline=None)
    def test_stats_accounting_consistent(self, addresses, writes):
        cache = Cache(capacity_words=128, ways=2, line_words=4)
        for address, write in zip(addresses, writes):
            cache.access(address, write=write)
        stats = cache.stats
        assert stats.accesses == len(addresses)
        assert stats.hits <= stats.accesses
        assert stats.dirty_evictions <= stats.evictions
        assert 0.0 <= stats.hit_rate <= 1.0

    @given(seed=st.integers(0, 2 ** 16),
           footprint=st.sampled_from([64, 256, 4096]))
    @settings(max_examples=25, deadline=None)
    def test_bigger_cache_never_worse(self, seed, footprint):
        """Inclusion property: more capacity cannot reduce the hit rate
        under LRU for the same trace."""
        rng = np.random.default_rng(seed)
        addresses = rng.integers(0, footprint, size=400)
        small = Cache(capacity_words=64, ways=2, line_words=4)
        large = Cache(capacity_words=256, ways=8, line_words=4)
        for address in addresses:
            small.access(int(address))
            large.access(int(address))
        assert large.stats.hit_rate >= small.stats.hit_rate - 1e-12


class TestRefreshInvariants:
    @given(seed=st.integers(0, 1000),
           activity=st.floats(0.05, 0.6),
           retention_cycles=st.sampled_from([25_000, 100_000, 400_000]))
    @settings(max_examples=15, deadline=None)
    def test_localized_never_worse_than_monoblock(self, seed, activity,
                                                  retention_cycles):
        rng = np.random.default_rng(seed)
        trace = uniform_random_trace(30_000, 128, activity, rng)
        local = RefreshSimulator(LocalizedRefresh(
            n_blocks=128, rows_per_block=32,
            refresh_period_cycles=retention_cycles)).run(trace)
        mono = RefreshSimulator(MonoblockRefresh(
            n_blocks=128, rows_per_block=32,
            refresh_period_cycles=retention_cycles)).run(trace)
        assert local.busy_fraction <= mono.busy_fraction
        assert local.completed == mono.completed == local.accesses

    @given(seed=st.integers(0, 1000), activity=st.floats(0.0, 0.6))
    @settings(max_examples=15, deadline=None)
    def test_busy_fraction_bounded(self, seed, activity):
        rng = np.random.default_rng(seed)
        trace = uniform_random_trace(20_000, 64, activity, rng)
        stats = RefreshSimulator(LocalizedRefresh(
            n_blocks=64, rows_per_block=32,
            refresh_period_cycles=200_000)).run(trace)
        assert 0.0 <= stats.busy_fraction <= 1.0
