"""Property-based tests for the extension modules."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cells import Dram1t1cCell
from repro.core.voltage import build_at_supply
from repro.refresh import TemperatureAdaptiveRefresh, plan_binned_refresh

_RETENTION = Dram1t1cCell.dram_technology().retention_model()


class TestTemperatureAdaptiveProperties:
    @given(base=st.floats(1e-5, 1e-1), t1=st.floats(280, 380),
           t2=st.floats(280, 380))
    @settings(max_examples=60, deadline=None)
    def test_retention_monotone_in_temperature(self, base, t1, t2):
        adaptive = TemperatureAdaptiveRefresh(base_retention=base)
        lo, hi = sorted((t1, t2))
        assert adaptive.retention_at(hi) <= adaptive.retention_at(lo)

    @given(base=st.floats(1e-5, 1e-1), temperature=st.floats(280, 380),
           interval=st.floats(5.0, 20.0))
    @settings(max_examples=60, deadline=None)
    def test_exact_doubling_law(self, base, temperature, interval):
        adaptive = TemperatureAdaptiveRefresh(base_retention=base,
                                              doubling_interval=interval)
        ratio = (adaptive.retention_at(temperature)
                 / adaptive.retention_at(temperature + interval))
        assert ratio == pytest.approx(2.0, rel=1e-9)

    @given(base=st.floats(1e-5, 1e-1), guard=st.floats(1.0, 4.0))
    @settings(max_examples=40, deadline=None)
    def test_period_below_retention(self, base, guard):
        adaptive = TemperatureAdaptiveRefresh(base_retention=base,
                                              guard=guard)
        assert (adaptive.refresh_period_at(320.0)
                <= adaptive.retention_at(320.0))


class TestBinnedPlanProperties:
    @given(n_blocks=st.sampled_from([16, 64, 256]),
           rows=st.sampled_from([1, 8, 32]),
           bins=st.integers(1, 8),
           seed=st.integers(0, 100))
    @settings(max_examples=25, deadline=None)
    def test_invariants(self, n_blocks, rows, bins, seed):
        plan = plan_binned_refresh(_RETENTION, n_blocks=n_blocks,
                                   rows_per_block=rows, n_bins=bins,
                                   seed=seed)
        # Block accounting exact.
        assert plan.n_blocks == n_blocks
        # Binning never costs power, and bin periods never under-refresh:
        assert plan.saving_factor() >= 1.0 - 1e-12
        for bin_ in plan.bins:
            assert bin_.period >= plan.base_period

    @given(bins_small=st.integers(1, 3), seed=st.integers(0, 50))
    @settings(max_examples=15, deadline=None)
    def test_more_bins_never_worse(self, bins_small, seed):
        small = plan_binned_refresh(_RETENTION, n_blocks=128,
                                    rows_per_block=8,
                                    n_bins=bins_small, seed=seed)
        large = plan_binned_refresh(_RETENTION, n_blocks=128,
                                    rows_per_block=8,
                                    n_bins=bins_small + 3, seed=seed)
        assert large.saving_factor() >= small.saving_factor() - 1e-12


class TestVoltageProperties:
    @given(v1=st.floats(0.85, 1.3), v2=st.floats(0.85, 1.3))
    @settings(max_examples=8, deadline=None)
    def test_speed_energy_tradeoff(self, v1, v2):
        lo, hi = sorted((v1, v2))
        if hi - lo < 0.05:
            return
        slow = build_at_supply(lo)
        fast = build_at_supply(hi)
        assert fast.access_time() < slow.access_time()
        assert fast.read_energy().total > slow.read_energy().total
