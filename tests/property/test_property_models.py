"""Property-based tests of the device and architecture models.

Monotonicity and scaling invariants that must hold for any parameter
combination the models accept.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.array import ArrayOrganization, SenseAmplifier
from repro.cells import Dram1t1cCell
from repro.tech import Mosfet, Polarity, TechnologyNode, VtFlavor
from repro.units import kb, um

_NODE = TechnologyNode.logic_90nm()
_DRAM_NODE = TechnologyNode.dram_90nm()
_TRENCH = Dram1t1cCell.dram_technology(_DRAM_NODE)

widths = st.floats(min_value=0.12, max_value=10.0)
biases = st.floats(min_value=0.0, max_value=1.2)


class TestDeviceInvariants:
    @given(w=widths, vg1=biases, vg2=biases, vd=biases)
    @settings(max_examples=80, deadline=None)
    def test_current_monotone_in_vgs(self, w, vg1, vg2, vd):
        device = Mosfet(_NODE, Polarity.NMOS, VtFlavor.SVT, width=w * um)
        lo, hi = sorted((vg1, vg2))
        assert (device.drain_current(hi, vd)
                >= device.drain_current(lo, vd) - 1e-18)

    @given(w=widths, vg=biases, vd1=biases, vd2=biases)
    @settings(max_examples=80, deadline=None)
    def test_current_monotone_in_vds(self, w, vg, vd1, vd2):
        device = Mosfet(_NODE, Polarity.NMOS, VtFlavor.SVT, width=w * um)
        lo, hi = sorted((vd1, vd2))
        assert (device.drain_current(vg, hi)
                >= device.drain_current(vg, lo) - 1e-18)

    @given(w=widths, ratio=st.floats(1.1, 10.0), vg=biases, vd=biases)
    @settings(max_examples=60, deadline=None)
    def test_current_scales_with_width(self, w, ratio, vg, vd):
        narrow = Mosfet(_NODE, Polarity.NMOS, VtFlavor.SVT, width=w * um)
        wide = narrow.scaled(ratio)
        i_n = narrow.drain_current(vg, vd)
        if i_n > 1e-18:
            assert wide.drain_current(vg, vd) == pytest.approx(
                ratio * i_n, rel=1e-6)

    @given(w=widths)
    @settings(max_examples=40, deadline=None)
    def test_currents_never_negative(self, w):
        device = Mosfet(_NODE, Polarity.NMOS, VtFlavor.HVT, width=w * um)
        assert device.off_current() >= 0
        assert device.on_current() > 0


class TestSenseAmpInvariants:
    @given(units=st.floats(1.0, 20.0), signal=st.floats(1e-3, 0.5))
    @settings(max_examples=60, deadline=None)
    def test_delay_positive_and_decreasing_in_signal(self, units, signal):
        sa = SenseAmplifier(_NODE, input_units=units)
        d1 = sa.sense_delay(signal)
        d2 = sa.sense_delay(signal * 2)
        assert d1 >= 0
        assert d2 <= d1

    @given(sigma=st.floats(1.0, 8.0))
    @settings(max_examples=30, deadline=None)
    def test_required_signal_linear_in_margin(self, sigma):
        import dataclasses
        base = SenseAmplifier(_NODE, margin_sigma=1.0)
        scaled = dataclasses.replace(base, margin_sigma=sigma)
        assert scaled.required_input_signal() == pytest.approx(
            sigma * base.required_input_signal())


class TestOrganizationInvariants:
    @given(exponent=st.integers(2, 7))
    @settings(max_examples=20, deadline=None)
    def test_signal_decreasing_in_lbl_length(self, exponent):
        cells = 2 ** exponent
        org = ArrayOrganization(node=_DRAM_NODE, cell=_TRENCH.spec(),
                                total_bits=128 * kb, cells_per_lbl=cells,
                                cell_aspect_ratio=1.0)
        longer = ArrayOrganization(node=_DRAM_NODE, cell=_TRENCH.spec(),
                                   total_bits=128 * kb,
                                   cells_per_lbl=cells * 2,
                                   cell_aspect_ratio=1.0)
        assert longer.read_signal() < org.read_signal()
        assert longer.lbl_capacitance() > org.lbl_capacitance()

    @given(exponent=st.integers(0, 5))
    @settings(max_examples=15, deadline=None)
    def test_block_accounting_exact(self, exponent):
        bits = 128 * kb * 2 ** exponent
        org = ArrayOrganization(node=_DRAM_NODE, cell=_TRENCH.spec(),
                                total_bits=bits, cells_per_lbl=32,
                                cell_aspect_ratio=1.0)
        assert (org.n_localblocks * org.bits_per_localblock
                == org.total_bits)
        assert org.n_block_rows * org.n_block_columns == org.n_localblocks
