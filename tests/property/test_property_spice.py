"""Property-based tests of the circuit simulator.

The MNA engine must respect circuit laws for *any* parameter values:
voltage dividers divide, charge is conserved, energy is non-negative
into passive networks.
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.spice import (
    Capacitor,
    Circuit,
    Resistor,
    VoltageSource,
    dc,
    simulate_transient,
    solve_dc,
)

resistances = st.floats(min_value=10.0, max_value=1e6,
                        allow_nan=False, allow_infinity=False)
voltages = st.floats(min_value=-5.0, max_value=5.0,
                     allow_nan=False, allow_infinity=False)
capacitances = st.floats(min_value=1e-15, max_value=1e-11,
                         allow_nan=False, allow_infinity=False)


class TestDcLaws:
    @given(v=voltages, r1=resistances, r2=resistances)
    @settings(max_examples=60, deadline=None)
    def test_divider_divides(self, v, r1, r2):
        c = Circuit("div")
        c.add(VoltageSource("v1", "in", "0", dc(v)))
        c.add(Resistor("r1", "in", "mid", r1))
        c.add(Resistor("r2", "mid", "0", r2))
        op = solve_dc(c)
        expected = v * r2 / (r1 + r2)
        assert op["mid"] == pytest.approx(expected, abs=1e-6 + 1e-3 * abs(v))

    @given(v=voltages, r1=resistances, r2=resistances, r3=resistances)
    @settings(max_examples=40, deadline=None)
    def test_kcl_at_star_node(self, v, r1, r2, r3):
        """Currents into the star point sum to zero."""
        c = Circuit("star")
        c.add(VoltageSource("v1", "in", "0", dc(v)))
        c.add(Resistor("r1", "in", "star", r1))
        c.add(Resistor("r2", "star", "0", r2))
        c.add(Resistor("r3", "star", "0", r3))
        op = solve_dc(c)
        i_in = (op["in"] - op["star"]) / r1
        i_out = op["star"] / r2 + op["star"] / r3
        assert i_in == pytest.approx(i_out, abs=1e-9 + 1e-6 * abs(i_in))

    @given(v=voltages.filter(lambda x: abs(x) > 0.01), r1=resistances)
    @settings(max_examples=40, deadline=None)
    def test_voltage_source_enforced(self, v, r1):
        c = Circuit("vs")
        c.add(VoltageSource("v1", "a", "0", dc(v)))
        c.add(Resistor("r1", "a", "0", r1))
        assert solve_dc(c)["a"] == pytest.approx(v, rel=1e-6)


class TestTransientLaws:
    @given(c1=capacitances, c2=capacitances, v0=st.floats(0.1, 3.0))
    @settings(max_examples=25, deadline=None)
    def test_charge_conservation(self, c1, c2, v0):
        """Charge sharing: q before == q after, for any caps and level."""
        circuit = Circuit("share")
        circuit.add(Capacitor("c1", "a", "0", c1, initial_voltage=v0))
        circuit.add(Capacitor("c2", "b", "0", c2, initial_voltage=0.0))
        circuit.add(Resistor("r", "a", "b", 1e3))
        tau = 1e3 * (c1 * c2 / (c1 + c2))
        result = simulate_transient(circuit, t_stop=20 * tau,
                                    dt=max(tau / 50, 1e-15))
        expected = v0 * c1 / (c1 + c2)
        assert result.final_voltage("a") == pytest.approx(expected, rel=0.02)
        assert result.final_voltage("b") == pytest.approx(expected, rel=0.02)

    @given(r=resistances, cap=capacitances, v=st.floats(0.1, 3.0))
    @settings(max_examples=25, deadline=None)
    def test_source_energy_cv2(self, r, cap, v):
        """Charging any RC from a step source draws exactly C*V^2."""
        from repro.spice import pulse, source_energy
        tau = r * cap
        circuit = Circuit("rc")
        circuit.add(VoltageSource("v1", "in", "0",
                                  pulse(0.0, v, delay=tau / 10,
                                        rise=tau / 100, width=1e6 * tau)))
        circuit.add(Resistor("r1", "in", "out", r))
        circuit.add(Capacitor("c1", "out", "0", cap))
        result = simulate_transient(circuit, t_stop=12 * tau, dt=tau / 80)
        assert source_energy(result, "v1") == pytest.approx(
            cap * v * v, rel=0.05)
