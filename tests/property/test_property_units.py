"""Property-based tests of units, statistics and report helpers."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import format_table
from repro.units import clamp, parallel, si_format
from repro.variability import (
    LognormalSpec,
    MonteCarloResult,
    worst_case_lognormal,
)

finite = st.floats(min_value=1e-18, max_value=1e18,
                   allow_nan=False, allow_infinity=False)


class TestUnits:
    @given(value=st.floats(min_value=-1e15, max_value=1e15,
                           allow_nan=False))
    @settings(max_examples=100, deadline=None)
    def test_si_format_total(self, value):
        """Formatting never crashes and keeps the sign."""
        text = si_format(value, "X")
        assert isinstance(text, str)
        if value < 0:
            assert text.startswith("-")

    @given(values=st.lists(finite, min_size=1, max_size=6))
    @settings(max_examples=100, deadline=None)
    def test_parallel_below_minimum(self, values):
        assert parallel(*values) <= min(values) * (1 + 1e-12)

    @given(x=st.floats(allow_nan=False, allow_infinity=False),
           lo=st.floats(-100, 0), hi=st.floats(0, 100))
    @settings(max_examples=100, deadline=None)
    def test_clamp_in_range(self, x, lo, hi):
        assert lo <= clamp(x, lo, hi) <= hi


class TestLognormalTail:
    @given(median=st.floats(1e-12, 1e-3), sigma=st.floats(0.05, 1.5),
           n_sigma=st.floats(1.0, 8.0))
    @settings(max_examples=60, deadline=None)
    def test_quantile_ordering(self, median, sigma, n_sigma):
        spec = LognormalSpec(median=median, sigma_ln=sigma)
        low = spec.quantile_at_sigma(-n_sigma)
        high = spec.quantile_at_sigma(n_sigma)
        assert 0 < low <= median <= high

    @given(seed=st.integers(0, 5000), sigma=st.floats(0.2, 1.2))
    @settings(max_examples=30, deadline=None)
    def test_worst_case_below_median(self, seed, sigma):
        rng = np.random.default_rng(seed)
        samples = rng.lognormal(mean=0.0, sigma=sigma, size=500)
        result = MonteCarloResult(samples=samples)
        worst = worst_case_lognormal(result, n_sigma=6.0, tail="low")
        assert 0 < worst < result.median


class TestFormatTable:
    @given(rows=st.lists(
        st.tuples(st.text(alphabet="abcXYZ019", max_size=8),
                  st.floats(-1e6, 1e6, allow_nan=False)),
        min_size=0, max_size=10))
    @settings(max_examples=60, deadline=None)
    def test_column_alignment(self, rows):
        text = format_table(["name", "value"], [list(r) for r in rows])
        lines = text.splitlines()
        assert len(lines) == 2 + len(rows)
        # The separator must be at least as wide as any cell line.
        assert all(len(line) <= len(lines[1]) + 2 for line in lines)
