"""Tests for adaptive refresh extensions (temperature + binned)."""

import pytest

from repro.errors import ConfigurationError
from repro.refresh import (
    BinnedRefreshPlan,
    RefreshBin,
    TemperatureAdaptiveRefresh,
    plan_binned_refresh,
)


@pytest.fixture(scope="module")
def retention_model(trench_cell):
    return trench_cell.retention_model()


class TestTemperatureAdaptive:
    def test_base_point(self):
        adaptive = TemperatureAdaptiveRefresh(base_retention=1e-3)
        assert adaptive.retention_at(300.0) == pytest.approx(1e-3)

    def test_halving_per_interval(self):
        adaptive = TemperatureAdaptiveRefresh(base_retention=1e-3,
                                              doubling_interval=10.0)
        assert adaptive.retention_at(310.0) == pytest.approx(0.5e-3)
        assert adaptive.retention_at(290.0) == pytest.approx(2e-3)

    def test_period_guard_banded(self):
        adaptive = TemperatureAdaptiveRefresh(base_retention=1e-3, guard=2.0)
        assert adaptive.refresh_period_at(300.0) == pytest.approx(0.5e-3)

    def test_saving_at_cool_operation(self):
        """The headline of the feature: a die at room temperature saved
        ~50x refresh power vs a fixed 85 C design point."""
        adaptive = TemperatureAdaptiveRefresh(base_retention=1e-3)
        saving = adaptive.power_saving_vs_fixed(300.0, 358.0)
        assert 30.0 < saving < 100.0

    def test_saving_identity_at_design_point(self):
        adaptive = TemperatureAdaptiveRefresh(base_retention=1e-3)
        assert adaptive.power_saving_vs_fixed(358.0, 358.0) == pytest.approx(1.0)

    def test_rejects_operation_above_design_point(self):
        adaptive = TemperatureAdaptiveRefresh(base_retention=1e-3)
        with pytest.raises(ConfigurationError):
            adaptive.power_saving_vs_fixed(400.0, 358.0)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            TemperatureAdaptiveRefresh(base_retention=0.0)
        with pytest.raises(ConfigurationError):
            TemperatureAdaptiveRefresh(base_retention=1e-3, guard=0.5)


class TestBinnedPlan:
    @pytest.fixture(scope="class")
    def plan(self, retention_model):
        return plan_binned_refresh(retention_model, n_blocks=128,
                                   rows_per_block=32, n_bins=5)

    def test_all_blocks_assigned(self, plan):
        assert plan.n_blocks == 128

    def test_periods_are_power_of_two_multiples(self, plan):
        for i, bin_ in enumerate(plan.bins):
            assert bin_.period == pytest.approx(plan.base_period * 2 ** i)

    def test_binning_saves_power(self, plan):
        """Most blocks escape the matrix-worst rate."""
        assert plan.saving_factor() > 1.1

    def test_finer_granularity_saves_more(self, retention_model):
        coarse = plan_binned_refresh(retention_model, n_blocks=128,
                                     rows_per_block=32, n_bins=6, seed=3)
        fine = plan_binned_refresh(retention_model, n_blocks=4096,
                                   rows_per_block=1, n_bins=6, seed=3)
        assert fine.saving_factor() > coarse.saving_factor()

    def test_single_bin_equals_uniform(self, retention_model):
        plan = plan_binned_refresh(retention_model, n_blocks=64,
                                   rows_per_block=32, n_bins=1)
        assert plan.saving_factor() == pytest.approx(1.0)

    def test_deterministic_under_seed(self, retention_model):
        a = plan_binned_refresh(retention_model, n_blocks=64,
                                rows_per_block=32, seed=5)
        b = plan_binned_refresh(retention_model, n_blocks=64,
                                rows_per_block=32, seed=5)
        assert [x.block_count for x in a.bins] == \
            [x.block_count for x in b.bins]

    def test_power_formula(self, plan):
        row_energy = 1.2e-12
        manual = sum(b.block_count * plan.rows_per_block * row_energy
                     / b.period for b in plan.bins)
        assert plan.refresh_power(row_energy) == pytest.approx(manual)

    def test_validation(self, retention_model):
        with pytest.raises(ConfigurationError):
            plan_binned_refresh(retention_model, n_blocks=0,
                                rows_per_block=32)
        with pytest.raises(ConfigurationError):
            plan_binned_refresh(retention_model, n_blocks=4,
                                rows_per_block=4, guard=0.5)
        with pytest.raises(ConfigurationError):
            RefreshBin(period=0.0, block_count=1)
        with pytest.raises(ConfigurationError):
            BinnedRefreshPlan(bins=[], rows_per_block=1, base_period=1.0,
                              uniform_period=1.0)


class TestVectorisedSampling:
    def test_matches_scalar_distribution(self, retention_model, rng):
        """sample_many must agree with the scalar sampler statistically."""
        import numpy as np
        vector = retention_model.sample_many(rng, 4000)
        scalar = retention_model.monte_carlo(count=800).samples
        # Compare medians within 20 %.
        assert np.median(vector) == pytest.approx(np.median(scalar),
                                                  rel=0.2)

    def test_all_positive(self, retention_model, rng):
        import numpy as np
        samples = retention_model.sample_many(rng, 1000)
        assert np.all(samples > 0)

    def test_count_validated(self, retention_model, rng):
        with pytest.raises(ConfigurationError):
            retention_model.sample_many(rng, 0)
