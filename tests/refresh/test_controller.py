"""Tests for refresh scheduling policies."""

import pytest

from repro.errors import ConfigurationError
from repro.refresh import LocalizedRefresh, MonoblockRefresh, RefreshOperation


@pytest.fixture()
def localized():
    return LocalizedRefresh(n_blocks=128, rows_per_block=32,
                            refresh_period_cycles=100_000)


@pytest.fixture()
def monoblock():
    return MonoblockRefresh(n_blocks=128, rows_per_block=32,
                            refresh_period_cycles=100_000)


class TestSchedule:
    def test_total_rows(self, localized):
        assert localized.total_rows == 4096

    def test_interval_spreads_refreshes(self, localized):
        assert localized.interval_cycles == pytest.approx(100_000 / 4096)

    def test_all_rows_covered_once_per_period(self, localized):
        rows = set()
        for i in range(localized.total_rows):
            op = localized.refresh_starting_at(i)
            rows.add((op.start_cycle, op.block))
        blocks = {b for _s, b in rows}
        assert blocks == set(range(128))

    def test_schedule_wraps(self, localized):
        first = localized.refresh_starting_at(0)
        wrapped = localized.refresh_starting_at(localized.total_rows)
        assert wrapped.block == first.block
        assert wrapped.start_cycle > first.start_cycle

    def test_utilisation_band(self, localized):
        assert 0 < localized.utilisation() < 0.1


class TestScopes:
    def test_monoblock_blocks_everything(self, monoblock):
        op = monoblock.refresh_starting_at(0)
        assert op.block is None
        assert op.blocks_access(op.start_cycle, 0)
        assert op.blocks_access(op.start_cycle, 127)

    def test_localized_blocks_one_block(self, localized):
        op = localized.refresh_starting_at(0)
        assert op.block == 0
        assert op.blocks_access(op.start_cycle, 0)
        assert not op.blocks_access(op.start_cycle, 1)

    def test_localized_walks_block_major(self, localized):
        first_block_ops = [localized.refresh_starting_at(i).block
                           for i in range(32)]
        assert set(first_block_ops) == {0}
        assert localized.refresh_starting_at(32).block == 1

    def test_operation_time_window(self):
        op = RefreshOperation(start_cycle=10, duration=2, block=3)
        assert not op.blocks_access(9, 3)
        assert op.blocks_access(10, 3)
        assert op.blocks_access(11, 3)
        assert not op.blocks_access(12, 3)


class TestValidation:
    def test_rejects_zero_period(self):
        with pytest.raises(ConfigurationError):
            MonoblockRefresh(n_blocks=4, rows_per_block=4,
                             refresh_period_cycles=0)

    def test_rejects_zero_duration(self):
        with pytest.raises(ConfigurationError):
            MonoblockRefresh(n_blocks=4, rows_per_block=4,
                             refresh_period_cycles=100,
                             refresh_duration_cycles=0)

    def test_utilisation_saturates_at_one(self):
        overloaded = MonoblockRefresh(n_blocks=4, rows_per_block=4,
                                      refresh_period_cycles=8,
                                      refresh_duration_cycles=2)
        assert overloaded.utilisation() == 1.0
