"""Tests for the refresh-interference simulator (paper Fig. 5)."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.refresh import (
    LocalizedRefresh,
    MonoblockRefresh,
    RefreshSimulator,
    analytic_busy_fraction,
    uniform_random_trace,
)

N_BLOCKS, ROWS = 128, 32
CLOCK = 500e6


def policy(cls, retention_s: float):
    return cls(n_blocks=N_BLOCKS, rows_per_block=ROWS,
               refresh_period_cycles=int(retention_s * CLOCK))


@pytest.fixture(scope="module")
def trace():
    rng = np.random.default_rng(7)
    return uniform_random_trace(120_000, N_BLOCKS, 0.5, rng)


class TestBasics:
    def test_all_accesses_complete(self, trace):
        stats = RefreshSimulator(policy(LocalizedRefresh, 200e-6)).run(trace)
        assert stats.completed == stats.accesses

    def test_refreshes_issued(self, trace):
        stats = RefreshSimulator(policy(LocalizedRefresh, 200e-6)).run(trace)
        # 120k cycles at one row per (period / 4096) cycles.
        expected = 120_000 / (200e-6 * CLOCK / 4096)
        assert stats.refreshes_issued == pytest.approx(expected, rel=0.1)

    def test_empty_traffic_no_stalls(self):
        empty = np.full(10_000, -1, dtype=np.int64)
        stats = RefreshSimulator(policy(MonoblockRefresh, 200e-6)).run(empty)
        assert stats.stall_cycles == 0
        assert stats.busy_fraction == 0.0

    def test_trace_validation(self):
        bad = np.array([0, 5, 999])
        with pytest.raises(SimulationError):
            RefreshSimulator(policy(LocalizedRefresh, 200e-6)).run(bad)

    def test_2d_trace_rejected(self):
        with pytest.raises(SimulationError):
            RefreshSimulator(policy(LocalizedRefresh, 200e-6)).run(
                np.zeros((2, 2), dtype=np.int64))


class TestPaperFig5:
    def test_localized_beats_monoblock(self, trace):
        """The figure's core message, at every retention."""
        for retention in (50e-6, 200e-6, 1e-3):
            mono = RefreshSimulator(policy(MonoblockRefresh, retention)).run(trace)
            local = RefreshSimulator(policy(LocalizedRefresh, retention)).run(trace)
            assert local.busy_fraction < 0.05 * mono.busy_fraction

    def test_penalty_negligible_at_high_retention(self, trace):
        """Paper: 'the refresh timing penalty is negligible … especially
        for high retention time'."""
        local = RefreshSimulator(policy(LocalizedRefresh, 1e-3)).run(trace)
        assert local.busy_fraction < 0.001

    def test_monoblock_penalty_scales_inverse_retention(self, trace):
        slow = RefreshSimulator(policy(MonoblockRefresh, 1e-3)).run(trace)
        fast = RefreshSimulator(policy(MonoblockRefresh, 100e-6)).run(trace)
        ratio = fast.busy_fraction / slow.busy_fraction
        assert ratio == pytest.approx(10.0, rel=0.35)

    def test_simulator_matches_analytic_order(self, trace):
        """The closed form predicts the right magnitude (within 3x —
        queueing effects make the simulation higher)."""
        for cls in (MonoblockRefresh, LocalizedRefresh):
            pol = policy(cls, 500e-6)
            simulated = RefreshSimulator(pol).run(trace).busy_fraction
            analytic = analytic_busy_fraction(pol, 0.5)
            assert analytic <= simulated < 4 * analytic + 1e-5

    def test_saturation_detected(self):
        """A refresh period shorter than the refresh work saturates the
        monoblock memory — the simulator must refuse, not hang."""
        rng = np.random.default_rng(3)
        heavy = uniform_random_trace(20_000, N_BLOCKS, 0.9, rng)
        with pytest.raises(SimulationError):
            RefreshSimulator(policy(MonoblockRefresh, 10e-6)).run(heavy)


class TestAnalytic:
    def test_localized_is_nblocks_cheaper(self):
        mono = policy(MonoblockRefresh, 200e-6)
        local = policy(LocalizedRefresh, 200e-6)
        ratio = (analytic_busy_fraction(mono, 0.5)
                 / analytic_busy_fraction(local, 0.5))
        assert ratio == pytest.approx(N_BLOCKS, rel=0.01)

    def test_scales_with_activity(self):
        pol = policy(MonoblockRefresh, 200e-6)
        assert analytic_busy_fraction(pol, 1.0) == pytest.approx(
            2 * analytic_busy_fraction(pol, 0.5))

    def test_activity_validated(self):
        pol = policy(MonoblockRefresh, 200e-6)
        from repro.errors import ConfigurationError
        with pytest.raises(ConfigurationError):
            analytic_busy_fraction(pol, 2.0)
