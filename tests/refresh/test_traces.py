"""Tests for access-trace generators."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.refresh import (
    bursty_trace,
    hot_block_trace,
    sequential_trace,
    uniform_random_trace,
)
from repro.refresh.traces import IDLE


class TestUniform:
    def test_activity_matches(self, rng):
        trace = uniform_random_trace(50000, 16, 0.5, rng)
        assert np.mean(trace != IDLE) == pytest.approx(0.5, abs=0.02)

    def test_blocks_in_range(self, rng):
        trace = uniform_random_trace(10000, 16, 0.8, rng)
        active = trace[trace != IDLE]
        assert active.min() >= 0 and active.max() < 16

    def test_roughly_uniform_across_blocks(self, rng):
        trace = uniform_random_trace(64000, 8, 1.0, rng)
        counts = np.bincount(trace, minlength=8)
        assert counts.min() > 0.8 * counts.max()

    def test_zero_activity_all_idle(self, rng):
        trace = uniform_random_trace(1000, 16, 0.0, rng)
        assert np.all(trace == IDLE)

    def test_rejects_bad_activity(self, rng):
        with pytest.raises(ConfigurationError):
            uniform_random_trace(100, 16, 1.5, rng)

    def test_rejects_empty(self, rng):
        with pytest.raises(ConfigurationError):
            uniform_random_trace(0, 16, 0.5, rng)


class TestBursty:
    def test_long_run_activity(self, rng):
        trace = bursty_trace(100000, 16, 0.5, rng, burst_length=16)
        assert np.mean(trace != IDLE) == pytest.approx(0.5, abs=0.1)

    def test_bursts_hit_single_block(self, rng):
        trace = bursty_trace(10000, 16, 0.5, rng, burst_length=8)
        # Find a burst start and check the next accesses share the block.
        for i in range(len(trace) - 8):
            if trace[i] != IDLE and (i == 0 or trace[i - 1] == IDLE):
                burst = trace[i:i + 8]
                if np.all(burst != IDLE):
                    assert len(np.unique(burst)) == 1
                    break
        else:
            pytest.fail("no complete burst found")

    def test_rejects_bad_burst_length(self, rng):
        with pytest.raises(ConfigurationError):
            bursty_trace(100, 16, 0.5, rng, burst_length=0)


class TestSequential:
    def test_visits_blocks_in_order(self, rng):
        trace = sequential_trace(10000, 8, 1.0, rng)
        active = trace[trace != IDLE]
        diffs = np.diff(active) % 8
        assert np.all(diffs == 1)


class TestHotBlock:
    def test_block_zero_dominates(self, rng):
        trace = hot_block_trace(50000, 16, 0.5, rng, hot_fraction=0.8)
        active = trace[trace != IDLE]
        assert np.mean(active == 0) > 0.7

    def test_rejects_bad_fraction(self, rng):
        with pytest.raises(ConfigurationError):
            hot_block_trace(100, 16, 0.5, rng, hot_fraction=1.5)
