"""Batched sample-axis transient solver: bit-identity is the contract.

Every test here compares the batched engine against per-sample
:func:`repro.spice.transient.simulate_transient` calls with
``np.array_equal`` (no tolerance): the batch is a *transcription* of
the scalar Newton loop, not an approximation of it.  Samples the batch
cannot carry — stiff draws that trip damping or exhaust the Newton
budget, singular rows, whole stacks with mismatched topology — must be
ejected to the scalar path so the contract holds by construction.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import obs
from repro.errors import (ConfigurationError, ConvergenceError, ReproError,
                          SimulationError)
from repro.spice import (
    BatchTransientModel,
    Capacitor,
    Circuit,
    Diode,
    Resistor,
    VoltageSource,
    batch_transient_outcomes,
    dc,
    eval_model_batch,
    simulate_transient,
    simulate_transient_batch,
)
from repro.spice.recovery import RecoveryConfig

T_STOP = 2e-10
DT = 1e-11


def _diode_divider(name: str, resistance: float, capacitance: float,
                   v_t: float, drive: float = 2.0) -> Circuit:
    """One sample: a driven RC node clamped by a diode.  The exponential
    diode is the nonlinearity that makes Newton iterate (and, at small
    ``v_t``, oscillate hard enough to trigger ejection)."""
    circuit = Circuit(name)
    circuit.add(VoltageSource("v1", "in", "0", dc(drive)))
    circuit.add(Resistor("r1", "in", "mid", resistance))
    circuit.add(Diode("d1", "mid", "0", v_t=v_t, v_clip=0.8))
    circuit.add(Capacitor("c1", "mid", "0", capacitance))
    return circuit


def _stack(count: int, seed: int, v_t: float = 0.026) -> list:
    rng = np.random.default_rng(seed)
    return [
        _diode_divider("stack", float(rng.lognormal(np.log(10e3), 0.4)),
                       float(rng.uniform(0.5e-12, 2e-12)), v_t)
        for _ in range(count)
    ]


def _serial_outcomes(circuits, recovery=None):
    outcomes = []
    for circuit in circuits:
        try:
            outcomes.append((True, simulate_transient(
                circuit, T_STOP, DT, recovery=recovery)))
        except ReproError as exc:
            outcomes.append((False, exc))
    return outcomes


def _assert_outcomes_identical(batched, serial):
    assert len(batched) == len(serial)
    for (b_ok, b_payload), (s_ok, s_payload) in zip(batched, serial):
        assert b_ok == s_ok
        if b_ok:
            assert np.array_equal(b_payload.data, s_payload.data)
            assert np.array_equal(b_payload.time, s_payload.time)
        else:
            assert type(b_payload) is type(s_payload)
            assert str(b_payload) == str(s_payload)


class TestBitIdentity:
    def test_waveforms_bit_identical(self):
        circuits = _stack(5, seed=7)
        batched = simulate_transient_batch(circuits, T_STOP, DT)
        for circuit, result in zip(circuits, batched):
            reference = simulate_transient(circuit, T_STOP, DT)
            assert np.array_equal(result.data, reference.data)
            assert np.array_equal(result.time, reference.time)
            assert result.node_index == reference.node_index

    def test_per_sample_initial_voltages(self):
        circuits = _stack(3, seed=11)
        initials = [{"mid": 0.1 * b} for b in range(3)]
        batched = simulate_transient_batch(circuits, T_STOP, DT,
                                           initial_voltages=initials)
        for circuit, initial, result in zip(circuits, initials, batched):
            reference = simulate_transient(circuit, T_STOP, DT,
                                           initial_voltages=initial)
            assert np.array_equal(result.data, reference.data)

    def test_ejected_stiff_samples_identical(self):
        # v_t = 0.012 makes the diode exponential steep and a 2-iterate
        # Newton budget unreachable for most samples: they must eject
        # to the scalar recovery ladder and still match it bit for bit.
        circuits = _stack(4, seed=3, v_t=0.012)
        recovery = RecoveryConfig(max_newton=2)
        batched = batch_transient_outcomes(circuits, T_STOP, DT,
                                           recovery=recovery)
        _assert_outcomes_identical(
            batched, _serial_outcomes(circuits, recovery=recovery))

    def test_scalar_failures_reproduced(self):
        # With every recovery rung disabled a 1-iterate budget fails on
        # the scalar path too; the batch must hand back the *same*
        # error per sample instead of raising or succeeding.
        circuits = _stack(3, seed=5, v_t=0.012)
        recovery = RecoveryConfig(
            max_newton=1, enable_damping=False, enable_substep=False,
            enable_gmin=False, enable_source=False)
        batched = batch_transient_outcomes(circuits, T_STOP, DT,
                                           recovery=recovery)
        serial = _serial_outcomes(circuits, recovery=recovery)
        assert any(not ok for ok, _ in serial)  # the workload is stiff
        _assert_outcomes_identical(batched, serial)

    def test_simulate_transient_batch_raises_first_failure(self):
        circuits = _stack(3, seed=5, v_t=0.012)
        recovery = RecoveryConfig(
            max_newton=1, enable_damping=False, enable_substep=False,
            enable_gmin=False, enable_source=False)
        with pytest.raises(ConvergenceError):
            simulate_transient_batch(circuits, T_STOP, DT,
                                     recovery=recovery)


class TestFallbacks:
    def test_single_sample_runs_scalar(self):
        circuits = _stack(1, seed=2)
        with obs.instrumented() as registry:
            batched = batch_transient_outcomes(circuits, T_STOP, DT)
        assert registry.counter("spice.batch.fallback").value == 1
        assert registry.counter("spice.batch.batches").value == 0
        _assert_outcomes_identical(batched, _serial_outcomes(circuits))

    def test_trap_integrator_falls_back(self):
        circuits = _stack(3, seed=2)
        with obs.instrumented() as registry:
            batched = batch_transient_outcomes(circuits, T_STOP, DT,
                                               integrator="trap")
        assert registry.counter("spice.batch.fallback").value == 3
        for circuit, (ok, result) in zip(circuits, batched):
            assert ok
            reference = simulate_transient(circuit, T_STOP, DT,
                                           integrator="trap")
            assert np.array_equal(result.data, reference.data)

    def test_mixed_topology_falls_back(self):
        circuits = _stack(2, seed=2)
        other = Circuit("stack")
        other.add(VoltageSource("v1", "in", "0", dc(2.0)))
        other.add(Resistor("r1", "in", "mid", 1e4))
        other.add(Resistor("r2", "mid", "0", 1e4))  # no diode: new shape
        other.add(Capacitor("c1", "mid", "0", 1e-12))
        circuits.append(other)
        with obs.instrumented() as registry:
            batched = batch_transient_outcomes(circuits, T_STOP, DT)
        assert registry.counter("spice.batch.fallback").value == 3
        _assert_outcomes_identical(batched, _serial_outcomes(circuits))

    def test_batched_stack_counts_samples(self):
        circuits = _stack(4, seed=2)
        with obs.instrumented() as registry:
            batch_transient_outcomes(circuits, T_STOP, DT)
        assert registry.counter("spice.batch.batches").value == 1
        assert registry.counter("spice.batch.samples").value == 4
        assert registry.counter("spice.batch.fallback").value == 0

    def test_empty_stack(self):
        assert batch_transient_outcomes([], T_STOP, DT) == []

    def test_bad_integrator_raises(self):
        with pytest.raises(SimulationError):
            batch_transient_outcomes(_stack(2, seed=0), T_STOP, DT,
                                     integrator="rk4")


class _DividerModel(BatchTransientModel):
    """Minimal batchable MC model over the diode divider."""

    t_stop = T_STOP
    dt = DT

    def __init__(self, fail_draw_below: float = -1.0,
                 fail_measure_above: float = 2.0) -> None:
        self.fail_draw_below = fail_draw_below
        self.fail_measure_above = fail_measure_above

    def draw(self, rng):
        value = float(rng.uniform())
        if value < self.fail_draw_below:
            raise ConfigurationError(f"draw fault at {value:.3f}")
        return 5e3 + 2e4 * value

    def build(self, resistance):
        return _diode_divider("model", resistance, 1e-12, 0.026)

    def measure(self, result, resistance):
        value = float(result.final_voltage("mid"))
        if value > self.fail_measure_above:
            raise SimulationError(f"measure fault at {value:.3f}")
        return value


class TestEvalModelBatch:
    def _rngs(self, count, seed):
        return [np.random.default_rng(child)
                for child in np.random.SeedSequence(seed).spawn(count)]

    def test_matches_serial_model_calls(self):
        model = _DividerModel()
        outcomes = eval_model_batch(model, self._rngs(5, seed=13))
        reference = [model(rng) for rng in self._rngs(5, seed=13)]
        assert [value for ok, value in outcomes] == reference
        assert all(ok for ok, _ in outcomes)

    def test_draw_failures_captured_per_sample(self):
        # Roughly half the draws fault; the survivors must still batch
        # and match their serial values exactly.
        model = _DividerModel(fail_draw_below=0.5)
        outcomes = eval_model_batch(model, self._rngs(6, seed=1))
        assert any(not ok for ok, _ in outcomes)
        for outcome, rng in zip(outcomes, self._rngs(6, seed=1)):
            ok, payload = outcome
            if ok:
                assert payload == model(rng)
            else:
                assert isinstance(payload, ConfigurationError)

    def test_measure_failures_captured_per_sample(self):
        model = _DividerModel(fail_measure_above=-10.0)  # always faults
        outcomes = eval_model_batch(model, self._rngs(3, seed=4))
        assert all(not ok for ok, _ in outcomes)
        assert all(isinstance(payload, SimulationError)
                   for _, payload in outcomes)


class TestBatchProperty:
    """Hypothesis sweep of the identity contract.

    Seeds vary the component draws, ``batch`` varies the stack width,
    and the sampled recovery configs inject Newton-budget faults that
    force mid-run ejection — the three axes the ISSUE's acceptance
    property names.  Identity must hold on every combination, including
    samples that *fail* identically on both paths.
    """

    @given(seed=st.integers(0, 2**20),
           count=st.integers(2, 5),
           v_t=st.sampled_from([0.012, 0.026, 0.05]),
           max_newton=st.sampled_from([None, 2, 40]))
    @settings(max_examples=15, deadline=None)
    def test_batched_equals_serial(self, seed, count, v_t, max_newton):
        circuits = _stack(count, seed=seed, v_t=v_t)
        recovery = (None if max_newton is None
                    else RecoveryConfig(max_newton=max_newton))
        batched = batch_transient_outcomes(circuits, T_STOP, DT,
                                           recovery=recovery)
        _assert_outcomes_identical(
            batched, _serial_outcomes(circuits, recovery=recovery))
