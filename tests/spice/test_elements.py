"""Tests for element parameter checks and waveform builders."""

import pytest

from repro.errors import ConfigurationError
from repro.spice import Capacitor, CurrentSource, Resistor, Switch, dc, pulse, pwl
from repro.units import ns, ps


class TestWaveforms:
    def test_dc_constant(self):
        w = dc(1.2)
        assert w(0.0) == 1.2
        assert w(1e-3) == 1.2

    def test_pulse_levels(self):
        w = pulse(0.0, 1.0, delay=1 * ns, rise=0.1 * ns, width=2 * ns)
        assert w(0.0) == 0.0
        assert w(1.05 * ns) == pytest.approx(0.5)
        assert w(2 * ns) == 1.0
        assert w(3.15 * ns) == pytest.approx(0.5)
        assert w(10 * ns) == 0.0

    def test_pulse_periodic(self):
        w = pulse(0.0, 1.0, delay=0.0, rise=1 * ps, width=1 * ns,
                  period=4 * ns)
        assert w(0.5 * ns) == 1.0
        assert w(2 * ns) == 0.0
        assert w(4.5 * ns) == 1.0

    def test_pulse_rejects_zero_rise(self):
        with pytest.raises(ConfigurationError):
            pulse(0.0, 1.0, delay=0.0, rise=0.0, width=1 * ns)

    def test_pwl_interpolates(self):
        w = pwl([(0.0, 0.0), (1e-9, 1.0)])
        assert w(0.5e-9) == pytest.approx(0.5)

    def test_pwl_clamps_outside(self):
        w = pwl([(1e-9, 0.5), (2e-9, 1.5)])
        assert w(0.0) == 0.5
        assert w(5e-9) == 1.5

    def test_pwl_rejects_non_increasing(self):
        with pytest.raises(ConfigurationError):
            pwl([(1e-9, 0.0), (1e-9, 1.0)])

    def test_pwl_rejects_empty(self):
        with pytest.raises(ConfigurationError):
            pwl([])


class TestElementValidation:
    def test_resistor_rejects_nonpositive(self):
        with pytest.raises(ConfigurationError):
            Resistor("r", "a", "b", 0.0)

    def test_resistor_current(self):
        r = Resistor("r", "a", "b", 2.0)
        assert r.current(3.0, 1.0) == pytest.approx(1.0)

    def test_capacitor_rejects_nonpositive(self):
        with pytest.raises(ConfigurationError):
            Capacitor("c", "a", "b", -1e-15)

    def test_switch_rejects_bad_resistances(self):
        with pytest.raises(ConfigurationError):
            Switch("s", "a", "b", "c", "0", r_on=1e3, r_off=10.0)

    def test_switch_conductance_limits(self):
        s = Switch("s", "a", "b", "c", "0", threshold=0.6, r_on=100.0)
        assert s.conductance(1.2) == pytest.approx(1 / 100.0, rel=0.01)
        assert s.conductance(0.0) == pytest.approx(1e-12, rel=0.1)

    def test_switch_monotone_transition(self):
        s = Switch("s", "a", "b", "c", "0", threshold=0.6)
        values = [s.conductance(v) for v in (0.0, 0.55, 0.6, 0.65, 1.2)]
        assert all(b >= a for a, b in zip(values, values[1:]))

    def test_current_source_terminals(self):
        i = CurrentSource("i", "a", "b", dc(1e-6))
        assert list(i.terminals()) == ["a", "b"]
