"""Tests for waveform CSV export."""

import pytest

from repro.errors import SimulationError
from repro.spice import (
    Capacitor,
    Circuit,
    Resistor,
    VoltageSource,
    pulse,
    save_waveforms,
    simulate_transient,
    waveforms_to_csv,
)
from repro.units import kohm, ns, pF, ps


@pytest.fixture(scope="module")
def result():
    c = Circuit("rc")
    c.add(VoltageSource("v1", "in", "0",
                        pulse(0.0, 1.0, delay=0.1 * ns, rise=1 * ps,
                              width=100 * ns)))
    c.add(Resistor("r1", "in", "out", 1 * kohm))
    c.add(Capacitor("c1", "out", "0", 1 * pF))
    return simulate_transient(c, 2 * ns, 100 * ps)


class TestCsv:
    def test_header_and_row_count(self, result):
        csv = waveforms_to_csv(result, ["in", "out"])
        lines = csv.strip().splitlines()
        assert lines[0] == "time,in,out"
        assert len(lines) == 1 + len(result.time)

    def test_time_unit_applied(self, result):
        csv = waveforms_to_csv(result, ["out"], time_unit=1e-9)
        last = csv.strip().splitlines()[-1]
        assert float(last.split(",")[0]) == pytest.approx(2.0)

    def test_values_match_result(self, result):
        csv = waveforms_to_csv(result, ["out"])
        final = float(csv.strip().splitlines()[-1].split(",")[1])
        assert final == pytest.approx(result.final_voltage("out"),
                                      rel=1e-4)

    def test_unknown_node_rejected(self, result):
        with pytest.raises(SimulationError):
            waveforms_to_csv(result, ["nope"])

    def test_empty_selection_rejected(self, result):
        with pytest.raises(SimulationError):
            waveforms_to_csv(result, [])

    def test_bad_units_rejected(self, result):
        with pytest.raises(SimulationError):
            waveforms_to_csv(result, ["out"], time_unit=0.0)


class TestSave:
    def test_roundtrip_to_disk(self, result, tmp_path):
        path = save_waveforms(result, ["in", "out"],
                              tmp_path / "wave.csv")
        assert path.exists()
        assert path.read_text().startswith("time,in,out")
