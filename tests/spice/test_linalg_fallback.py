"""Pure-NumPy Doolittle fallback of ``repro.spice.linalg``.

The fallback normally runs only when LAPACK (scipy) is absent, so
nothing would exercise it on the CI image.  These tests call the
``_numpy_*`` kernels directly and pin (a) numerical parity against the
LAPACK path on random well-conditioned systems and (b) the
singular-matrix error contract both entry points share.
"""

import numpy as np
import pytest

from repro.spice import linalg


def random_spd_system(rng, n):
    """A well-conditioned system: diagonally dominant + random rhs."""
    a = rng.normal(0.0, 1.0, size=(n, n))
    a += n * np.eye(n)
    b = rng.normal(0.0, 1.0, size=n)
    return a, b


class TestDoolittleParity:
    @pytest.mark.parametrize("n", [1, 2, 3, 7, 16, 40])
    def test_matches_lapack_path(self, n):
        rng = np.random.default_rng(1000 + n)
        for _ in range(5):
            a, b = random_spd_system(rng, n)
            lu, piv = linalg._numpy_lu(a)
            x = linalg._numpy_backsolve(lu, piv, b)
            expected = linalg.lu_backsolve(linalg.lu_factorize(a), b)
            np.testing.assert_allclose(x, expected, rtol=1e-10,
                                       atol=1e-12)

    def test_solves_permuted_system(self):
        # A zero leading diagonal forces an actual row swap.
        a = np.array([[0.0, 2.0], [3.0, 1.0]])
        b = np.array([4.0, 5.0])
        lu, piv = linalg._numpy_lu(a)
        x = linalg._numpy_backsolve(lu, piv, b)
        np.testing.assert_allclose(a @ x, b, atol=1e-12)

    def test_multiple_rhs_columns(self):
        rng = np.random.default_rng(7)
        a, _ = random_spd_system(rng, 6)
        rhs = rng.normal(size=(6, 3))
        lu, piv = linalg._numpy_lu(a)
        x = linalg._numpy_backsolve(lu, piv, rhs)
        np.testing.assert_allclose(a @ x, rhs, atol=1e-10)

    def test_input_matrix_not_mutated(self):
        rng = np.random.default_rng(8)
        a, _ = random_spd_system(rng, 5)
        snapshot = a.copy()
        linalg._numpy_lu(a)
        np.testing.assert_array_equal(a, snapshot)


class TestDoolittleSingularContract:
    def test_zero_pivot_raises_like_lapack(self):
        singular = np.array([[1.0, 2.0], [2.0, 4.0]])
        with pytest.raises(np.linalg.LinAlgError,
                           match="singular matrix"):
            linalg._numpy_lu(singular)

    def test_zero_matrix_raises(self):
        with pytest.raises(np.linalg.LinAlgError):
            linalg._numpy_lu(np.zeros((3, 3)))

    def test_non_square_raises(self):
        with pytest.raises(np.linalg.LinAlgError):
            linalg._numpy_lu(np.ones((2, 3)))

    def test_batch_returns_none_for_singular_sample(self):
        rng = np.random.default_rng(9)
        good, _ = random_spd_system(rng, 4)
        stack = np.stack([good, np.zeros((4, 4)), good])
        factors = linalg._numpy_lu_batch(stack)
        assert factors[1] is None
        assert factors[0] is not None and factors[2] is not None

    def test_batch_factors_match_scalar_fallback(self):
        rng = np.random.default_rng(10)
        stack = np.stack([random_spd_system(rng, 5)[0] for _ in range(3)])
        batch = linalg._numpy_lu_batch(stack)
        for b, factors in enumerate(batch):
            kind, lu, piv = factors
            assert kind == "numpy"
            lu_ref, piv_ref = linalg._numpy_lu(stack[b])
            np.testing.assert_array_equal(lu, lu_ref)
            np.testing.assert_array_equal(piv, piv_ref)
