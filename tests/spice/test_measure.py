"""Tests for waveform measurements."""

import math

import pytest

from repro.errors import SimulationError
from repro.spice import (
    Capacitor,
    Circuit,
    Resistor,
    VoltageSource,
    crossing_time,
    delay_between,
    pulse,
    signal_swing,
    simulate_transient,
    source_charge,
    source_energy,
)
from repro.units import kohm, ns, pF, ps


@pytest.fixture(scope="module")
def rc_result():
    c = Circuit("rc")
    c.add(VoltageSource("v1", "in", "0",
                        pulse(0.0, 1.0, delay=0.1 * ns, rise=1 * ps,
                              width=100 * ns)))
    c.add(Resistor("r1", "in", "out", 1 * kohm))
    c.add(Capacitor("c1", "out", "0", 1 * pF))
    return simulate_transient(c, 10 * ns, 5 * ps)


class TestCrossing:
    def test_rise_crossing(self, rc_result):
        t = crossing_time(rc_result, "out", 0.5, "rise")
        expected = 0.1e-9 + 1e-9 * math.log(2.0)
        assert t == pytest.approx(expected, rel=0.02)

    def test_never_crossing_raises(self, rc_result):
        with pytest.raises(SimulationError):
            crossing_time(rc_result, "out", 2.0, "rise")

    def test_wrong_direction_raises(self, rc_result):
        with pytest.raises(SimulationError):
            crossing_time(rc_result, "out", 0.5, "fall")

    def test_any_direction(self, rc_result):
        t_any = crossing_time(rc_result, "out", 0.5, "any")
        t_rise = crossing_time(rc_result, "out", 0.5, "rise")
        assert t_any == t_rise

    def test_bad_direction_rejected(self, rc_result):
        with pytest.raises(SimulationError):
            crossing_time(rc_result, "out", 0.5, "sideways")

    def test_start_time_skips_early_crossing(self, rc_result):
        with pytest.raises(SimulationError):
            crossing_time(rc_result, "out", 0.5, "rise", start=5 * ns)


class TestDelay:
    def test_input_to_output(self, rc_result):
        d = delay_between(rc_result, "in", "out", 0.5, 0.5,
                          "rise", "rise")
        assert d == pytest.approx(1e-9 * math.log(2.0), rel=0.03)


class TestSwing:
    def test_full_swing(self, rc_result):
        assert signal_swing(rc_result, "in") == pytest.approx(1.0, abs=1e-6)

    def test_windowed_swing(self, rc_result):
        late = signal_swing(rc_result, "out", start=6 * ns)
        assert late < 0.01


class TestEnergyCharge:
    def test_charge_equals_cv(self, rc_result):
        q = source_charge(rc_result, "v1")
        assert q == pytest.approx(1e-12, rel=0.01)  # C * V

    def test_energy_equals_cv2(self, rc_result):
        e = source_energy(rc_result, "v1")
        assert e == pytest.approx(1e-12, rel=0.01)  # C * V^2

    def test_window_restricts_integral(self, rc_result):
        early = source_energy(rc_result, "v1", stop=0.6 * ns)
        total = source_energy(rc_result, "v1")
        assert 0 < early < total

    def test_empty_window_raises(self, rc_result):
        with pytest.raises(SimulationError):
            source_energy(rc_result, "v1", start=9.999 * ns, stop=9.9995 * ns)
