"""Tests for MNA assembly primitives."""

import numpy as np
import pytest

from repro.errors import NetlistError, SimulationError
from repro.spice import Circuit, Resistor, VoltageSource, dc
from repro.spice.mna import MnaSystem, StampContext


@pytest.fixture()
def system():
    c = Circuit("t")
    c.add(VoltageSource("v1", "a", "0", dc(1.0)))
    c.add(Resistor("r1", "a", "b", 1e3))
    c.add(Resistor("r2", "b", "0", 1e3))
    return MnaSystem(c)


class TestIndexing:
    def test_ground_is_minus_one(self, system):
        assert system.index("0") == -1

    def test_nodes_then_branches(self, system):
        assert system.index("a") == 0
        assert system.index("b") == 1
        assert system.branch("v1") == 2
        assert system.size == 3

    def test_unknown_node_raises(self, system):
        with pytest.raises(NetlistError):
            system.index("zz")

    def test_non_source_branch_raises(self, system):
        with pytest.raises(NetlistError):
            system.branch("r1")


class TestStamps:
    def test_conductance_stamp_symmetry(self, system):
        system.stamp_conductance("a", "b", 2.0)
        m = system.matrix
        assert m[0, 0] == 2.0 and m[1, 1] == 2.0
        assert m[0, 1] == -2.0 and m[1, 0] == -2.0

    def test_conductance_to_ground_only_diagonal(self, system):
        system.stamp_conductance("a", "0", 3.0)
        assert system.matrix[0, 0] == 3.0
        assert system.matrix[0, 1] == 0.0

    def test_current_stamp(self, system):
        system.stamp_current("a", "b", 1e-3)
        assert system.rhs[0] == -1e-3
        assert system.rhs[1] == 1e-3

    def test_voltage_source_stamp(self, system):
        system.stamp_voltage_source("v1", "a", "0", 1.0)
        br = system.branch("v1")
        assert system.matrix[0, br] == 1.0
        assert system.matrix[br, 0] == 1.0
        assert system.rhs[br] == 1.0

    def test_reset_clears(self, system):
        system.stamp_conductance("a", "b", 2.0)
        system.reset()
        assert np.all(system.matrix == 0.0)
        assert np.all(system.rhs == 0.0)

    def test_singular_solve_raises(self, system):
        # Nothing stamped: singular.
        with pytest.raises(SimulationError):
            system.solve()

    def test_transconductance_stamp(self, system):
        system.stamp_transconductance("a", "b", "b", "0", 0.5)
        # Current 0.5*V(b) flows a -> b.
        assert system.matrix[0, 1] == 0.5
        assert system.matrix[1, 1] == -0.5


class TestStampContext:
    def test_voltage_reads_iterate(self, system):
        x = np.array([1.0, 0.5, 0.0])
        ctx = StampContext(system=system, x=x)
        assert ctx.voltage("a") == 1.0
        assert ctx.voltage("b") == 0.5
        assert ctx.voltage("0") == 0.0

    def test_previous_requires_history(self, system):
        ctx = StampContext(system=system, x=np.zeros(3))
        with pytest.raises(SimulationError):
            ctx.voltage("a", previous=True)
