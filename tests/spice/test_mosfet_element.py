"""Tests for the nonlinear MOSFET circuit element."""

import pytest

from repro.spice import (
    Capacitor,
    Circuit,
    MosfetElement,
    VoltageSource,
    crossing_time,
    dc,
    pulse,
    simulate_transient,
)
from repro.tech import Mosfet, Polarity, VtFlavor
from repro.units import fF, ns, ps, um


@pytest.fixture(scope="module")
def nmos(dram_node):
    return Mosfet(dram_node, Polarity.NMOS, VtFlavor.HVT, width=0.24 * um,
                  length_factor=1.5)


@pytest.fixture(scope="module")
def svt(logic_node):
    return Mosfet(logic_node, Polarity.NMOS, VtFlavor.SVT, width=1 * um)


class TestCurrentConvention:
    def test_forward_conduction_positive(self, svt):
        element = MosfetElement("m", "d", "g", "s", svt)
        assert element.current(v_d=1.2, v_g=1.2, v_s=0.0) > 0

    def test_reverse_conduction_negative(self, svt):
        element = MosfetElement("m", "d", "g", "s", svt)
        assert element.current(v_d=0.0, v_g=1.2, v_s=1.2) < 0

    def test_symmetric_pass_transistor(self, svt):
        """|I| equal for mirrored drain/source biases."""
        element = MosfetElement("m", "d", "g", "s", svt)
        forward = element.current(1.0, 1.2, 0.2)
        reverse = element.current(0.2, 1.2, 1.0)
        assert forward == pytest.approx(-reverse, rel=1e-9)

    def test_off_device_negligible(self, svt):
        element = MosfetElement("m", "d", "g", "s", svt)
        assert abs(element.current(1.2, 0.0, 0.0)) < 1e-8

    def test_pmos_conducts_with_low_gate(self, logic_node):
        pmos = Mosfet(logic_node, Polarity.PMOS, VtFlavor.SVT, width=1 * um)
        element = MosfetElement("m", "d", "g", "s", pmos)
        # Source at vdd, gate low: current flows source -> drain,
        # i.e. negative in drain->source convention.
        assert element.current(v_d=0.0, v_g=0.0, v_s=1.2) < 0

    def test_pmos_off_with_high_gate(self, logic_node):
        pmos = Mosfet(logic_node, Polarity.PMOS, VtFlavor.SVT, width=1 * um)
        element = MosfetElement("m", "d", "g", "s", pmos)
        assert abs(element.current(v_d=0.0, v_g=1.2, v_s=1.2)) < 1e-8


class TestPulldownTransient:
    def test_delay_matches_cv_over_i(self, svt):
        load = 20 * fF
        c = Circuit("pulldown")
        c.add(VoltageSource("vg", "g", "0",
                            pulse(0.0, 1.2, delay=50 * ps, rise=5 * ps,
                                  width=100 * ns)))
        c.add(MosfetElement("m1", "out", "g", "0", svt))
        c.add(Capacitor("cl", "out", "0", load, initial_voltage=1.2))
        result = simulate_transient(c, 1 * ns, 1 * ps)
        measured = crossing_time(result, "out", 0.6, "fall") - 55 * ps
        analytic = load * 0.6 / svt.on_current()
        assert measured == pytest.approx(analytic, rel=0.5)

    def test_full_discharge(self, svt):
        c = Circuit("pulldown")
        c.add(VoltageSource("vg", "g", "0", dc(1.2)))
        c.add(MosfetElement("m1", "out", "g", "0", svt))
        c.add(Capacitor("cl", "out", "0", 20 * fF, initial_voltage=1.2))
        result = simulate_transient(c, 2 * ns, 2 * ps)
        assert result.final_voltage("out") < 1e-3


class TestChargeSharing:
    def test_bidirectional_settling(self, nmos):
        """Cell and bitline equalise through the access device —
        the paper's fundamental read mechanism."""
        c = Circuit("share")
        c.add(VoltageSource("wl", "wl", "0",
                            pulse(0.0, 1.7, delay=50 * ps, rise=20 * ps,
                                  width=100 * ns)))
        c.add(MosfetElement("acc", "bl", "wl", "cell", nmos))
        c.add(Capacitor("ccell", "cell", "0", 30 * fF, initial_voltage=0.0))
        c.add(Capacitor("cbl", "bl", "0", 10 * fF, initial_voltage=1.0))
        result = simulate_transient(c, 5 * ns, 2 * ps)
        expected = 10.0 / 40.0  # charge conservation
        assert result.final_voltage("bl") == pytest.approx(expected, abs=0.02)
        assert result.final_voltage("cell") == pytest.approx(expected,
                                                             abs=0.02)

    def test_threshold_drop_without_overdrive(self, logic_node):
        """Writing '1' through a 1.2 V word line loses a threshold —
        the scratch-pad limitation the 1.7 V overdrive removes."""
        access = Mosfet(logic_node, Polarity.NMOS, VtFlavor.HVT,
                        width=0.24 * um, length_factor=1.5)
        c = Circuit("write1")
        c.add(VoltageSource("wl", "wl", "0", dc(1.2)))
        c.add(VoltageSource("bl", "bl", "0", dc(1.2)))
        c.add(MosfetElement("acc", "bl", "wl", "cell", access))
        c.add(Capacitor("ccell", "cell", "0", 11 * fF, initial_voltage=0.0))
        result = simulate_transient(c, 20 * ns, 10 * ps)
        final = result.final_voltage("cell")
        assert 0.55 < final < 0.95  # well below the 1.2 V bitline
