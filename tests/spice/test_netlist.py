"""Tests for circuit netlist construction."""

import pytest

from repro.errors import NetlistError
from repro.spice import Circuit, Resistor, VoltageSource, dc


def divider() -> Circuit:
    c = Circuit("divider")
    c.add(VoltageSource("v1", "in", "0", dc(1.0)))
    c.add(Resistor("r1", "in", "mid", 1e3))
    c.add(Resistor("r2", "mid", "0", 1e3))
    return c


class TestConstruction:
    def test_nodes_in_first_use_order(self):
        assert divider().nodes() == ["in", "mid"]

    def test_ground_not_a_node(self):
        assert "0" not in divider().nodes()

    def test_duplicate_element_name_rejected(self):
        c = divider()
        with pytest.raises(NetlistError):
            c.add(Resistor("r1", "a", "b", 1.0))

    def test_empty_element_name_rejected(self):
        with pytest.raises(NetlistError):
            Resistor("", "a", "b", 1.0)

    def test_element_lookup(self):
        c = divider()
        assert c.element("r1").resistance == 1e3

    def test_unknown_element_lookup(self):
        with pytest.raises(NetlistError):
            divider().element("nope")

    def test_elements_returns_all(self):
        assert len(divider().elements) == 3


class TestValidation:
    def test_valid_circuit_passes(self):
        divider().validate()

    def test_empty_circuit_rejected(self):
        with pytest.raises(NetlistError):
            Circuit("empty").validate()

    def test_floating_circuit_rejected(self):
        c = Circuit("floating")
        c.add(Resistor("r1", "a", "b", 1.0))
        with pytest.raises(NetlistError):
            c.validate()

    def test_source_flags(self):
        c = divider()
        assert c.element("v1").is_source()
        assert not c.element("r1").is_source()
