"""Tests for the DC operating-point solver."""

import pytest

from repro.errors import SimulationError
from repro.spice import (
    Circuit,
    CurrentSource,
    MosfetElement,
    Resistor,
    VoltageSource,
    dc,
    solve_dc,
)
from repro.tech import Mosfet, Polarity, VtFlavor
from repro.units import kohm, um


class TestLinear:
    def test_divider(self):
        c = Circuit("div")
        c.add(VoltageSource("v1", "in", "0", dc(1.2)))
        c.add(Resistor("r1", "in", "mid", 2 * kohm))
        c.add(Resistor("r2", "mid", "0", 1 * kohm))
        op = solve_dc(c)
        assert op["mid"] == pytest.approx(0.4, abs=1e-6)
        assert op["in"] == pytest.approx(1.2, abs=1e-9)

    def test_current_source_into_resistor(self):
        c = Circuit("ir")
        c.add(CurrentSource("i1", "0", "out", dc(1e-3)))
        c.add(Resistor("r1", "out", "0", 1 * kohm))
        op = solve_dc(c)
        assert op["out"] == pytest.approx(1.0, abs=1e-6)

    def test_two_sources_superpose(self):
        c = Circuit("two")
        c.add(VoltageSource("v1", "a", "0", dc(1.0)))
        c.add(VoltageSource("v2", "b", "0", dc(2.0)))
        c.add(Resistor("r1", "a", "mid", 1 * kohm))
        c.add(Resistor("r2", "b", "mid", 1 * kohm))
        c.add(Resistor("r3", "mid", "0", 1e9))
        op = solve_dc(c)
        assert op["mid"] == pytest.approx(1.5, rel=1e-3)


class TestNonlinear:
    def test_inverter_logic_levels(self, logic_node):
        nmos = Mosfet(logic_node, Polarity.NMOS, VtFlavor.SVT, width=1 * um)
        pmos = Mosfet(logic_node, Polarity.PMOS, VtFlavor.SVT, width=2 * um)

        def inverter(vin: float) -> float:
            c = Circuit("inv")
            c.add(VoltageSource("vdd", "vdd", "0", dc(1.2)))
            c.add(VoltageSource("vin", "in", "0", dc(vin)))
            c.add(MosfetElement("mn", "out", "in", "0", nmos))
            c.add(MosfetElement("mp", "out", "in", "vdd", pmos))
            return solve_dc(c)["out"]

        assert inverter(0.0) > 1.1
        assert inverter(1.2) < 0.1

    def test_inverter_transition_monotone(self, logic_node):
        nmos = Mosfet(logic_node, Polarity.NMOS, VtFlavor.SVT, width=1 * um)
        pmos = Mosfet(logic_node, Polarity.PMOS, VtFlavor.SVT, width=2 * um)
        outputs = []
        for vin in (0.0, 0.3, 0.5, 0.7, 0.9, 1.2):
            c = Circuit("inv")
            c.add(VoltageSource("vdd", "vdd", "0", dc(1.2)))
            c.add(VoltageSource("vin", "in", "0", dc(vin)))
            c.add(MosfetElement("mn", "out", "in", "0", nmos))
            c.add(MosfetElement("mp", "out", "in", "vdd", pmos))
            outputs.append(solve_dc(c)["out"])
        assert all(b <= a + 1e-6 for a, b in zip(outputs, outputs[1:]))

    def test_diode_connected_drop(self, logic_node):
        """Diode-connected NMOS fed by a current source settles near vth."""
        nmos = Mosfet(logic_node, Polarity.NMOS, VtFlavor.SVT, width=10 * um)
        c = Circuit("diode")
        c.add(CurrentSource("i1", "0", "d", dc(10e-6)))
        c.add(MosfetElement("m1", "d", "d", "0", nmos))
        op = solve_dc(c)
        assert 0.2 < op["d"] < 0.6

    def test_initial_guess_accepted(self, logic_node):
        c = Circuit("div")
        c.add(VoltageSource("v1", "in", "0", dc(1.2)))
        c.add(Resistor("r1", "in", "mid", 1 * kohm))
        c.add(Resistor("r2", "mid", "0", 1 * kohm))
        op = solve_dc(c, initial_guess={"mid": 0.6})
        assert op["mid"] == pytest.approx(0.6, abs=1e-6)

    def test_time_dependent_source_sampled_at_time(self):
        from repro.spice import pulse
        c = Circuit("pulse-op")
        c.add(VoltageSource("v1", "in", "0",
                            pulse(0.0, 1.0, delay=1e-9, rise=1e-12,
                                  width=10e-9)))
        c.add(Resistor("r1", "in", "0", 1 * kohm))
        assert solve_dc(c, time=0.0)["in"] == pytest.approx(0.0, abs=1e-9)
        assert solve_dc(c, time=5e-9)["in"] == pytest.approx(1.0, abs=1e-9)
