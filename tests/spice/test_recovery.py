"""The solver recovery ladder, driven to each rung deterministically.

The stiff circuit is a diode fed from a stiff source: from a cold
start, plain Newton crawls up the exponential at roughly one thermal
voltage per iteration, so a sharp diode (small ``v_t``) plus a small
``max_newton`` budget makes the plain solve fail reproducibly while a
specific ladder rung still converges.  The constants below were chosen
by measuring the iteration demand of every rung:

* ``v_t=0.005`` — plain cold-start Newton needs ~66 iterations;
* ratio-2 gmin ladder — the worst gmin stage needs ~14 iterations;
* ``max_newton=25`` — sits cleanly between the two.
"""

from __future__ import annotations

import pytest

from repro import obs
from repro.errors import ConfigurationError, ConvergenceError
from repro.spice import (Capacitor, Circuit, Diode, Resistor, VoltageSource,
                         dc, simulate_transient, solve_dc)
from repro.spice.recovery import (RUNGS, RecoveryConfig, RecoveryReport)

#: Dense gmin ladder (ratio ~2 per stage) so every stage's warm start
#: lands within the tight Newton budget.
GMIN_LADDER = tuple(10.0 ** (-0.3 * k) for k in range(4, 41))


def stiff_diode_circuit(v_t: float = 0.005, supply: float = 5.0,
                        resistance: float = 1e6) -> Circuit:
    circuit = Circuit("stiff-diode")
    circuit.add(VoltageSource("v1", "in", "0", dc(supply)))
    circuit.add(Resistor("r1", "in", "d", resistance))
    circuit.add(Diode("d1", "d", "0", v_t=v_t, v_clip=0.5))
    circuit.add(Capacitor("cl", "in", "0", 1e-12))
    return circuit


def run_stiff(recovery: RecoveryConfig):
    """One short transient of the stiff circuit under ``recovery``."""
    return simulate_transient(stiff_diode_circuit(), t_stop=1e-9, dt=1e-10,
                              initial_voltages={"in": 5.0},
                              recovery=recovery)


class TestGminStepping:
    """The ISSUE's flagship case: plain Newton fails, gmin converges."""

    def test_plain_newton_fails_without_ladder(self):
        bare = RecoveryConfig(max_newton=25, enable_damping=False,
                              enable_substep=False, enable_gmin=False,
                              enable_source=False)
        with pytest.raises(ConvergenceError) as excinfo:
            run_stiff(bare)
        report = excinfo.value.recovery
        assert isinstance(report, RecoveryReport)
        assert not report.succeeded
        assert report.rungs_tried() == ("newton",)
        assert report.attempts[0].detail == "plain"

    def test_gmin_stepping_converges_where_newton_cannot(self):
        gmin_only = RecoveryConfig(max_newton=25, enable_damping=False,
                                   enable_substep=False,
                                   enable_source=False,
                                   gmin_ladder=GMIN_LADDER)
        registry = obs.MetricsRegistry()
        with obs.instrumented(registry=registry, tracer=obs.Tracer()):
            result = run_stiff(gmin_only)
        # ~0.1 V across the diode: i = 5 V / 1 Mohm = 5 uA into a sharp
        # exponential — the physically correct operating point.
        assert result.final_voltage("d") == pytest.approx(0.100, abs=5e-3)
        counters = registry.snapshot()["counters"]
        assert counters["spice.recovery.gmin"] == 1
        assert counters["spice.recovery.escalations"] == 1
        assert "spice.recovery.exhausted" not in counters

    def test_full_ladder_escalates_to_gmin(self):
        """With every rung enabled the ladder reaches gmin: damping and
        substep cannot beat the exponential crawl, gmin can."""
        full = RecoveryConfig(max_newton=25, gmin_ladder=GMIN_LADDER)
        registry = obs.MetricsRegistry()
        with obs.instrumented(registry=registry, tracer=obs.Tracer()):
            result = run_stiff(full)
        assert result.final_voltage("d") == pytest.approx(0.100, abs=5e-3)
        counters = registry.snapshot()["counters"]
        assert counters["spice.recovery.gmin"] == 1
        assert "spice.recovery.damping" not in counters
        assert "spice.recovery.substep" not in counters


class TestGoldenRecoveryReport:
    """The full escalation transcript is deterministic."""

    def test_report_matches_golden_sequence(self):
        full = RecoveryConfig(max_newton=25, gmin_ladder=GMIN_LADDER)
        with pytest.raises(ConvergenceError) as excinfo:
            # Disable gmin and source so the ladder is exhausted and the
            # report rides out on the exception.
            crippled = RecoveryConfig(
                max_newton=25, enable_gmin=False, enable_source=False,
                damping_factors=full.damping_factors,
                max_halvings=full.max_halvings)
            run_stiff(crippled)
        report = excinfo.value.recovery
        golden = [
            ("newton", "plain", False),
            ("damping", "damping=0.25", False),
            ("damping", "damping=0.0625", False),
            ("substep", "substeps=2", False),
            ("substep", "substeps=4", False),
            ("substep", "substeps=8", False),
            ("substep", "substeps=16", False),
            ("substep", "substeps=32", False),
            ("substep", "substeps=64", False),
            ("substep", "substeps=128", False),
        ]
        assert [(a.rung, a.detail, a.converged)
                for a in report.attempts] == golden
        assert report.successful_rung is None
        assert "failed" in report.describe()

    def test_successful_walk_records_every_gmin_stage(self):
        gmin_only = RecoveryConfig(max_newton=25, enable_damping=False,
                                   enable_substep=False,
                                   enable_source=False,
                                   gmin_ladder=GMIN_LADDER)
        registry = obs.MetricsRegistry()
        with obs.instrumented(registry=registry, tracer=obs.Tracer()):
            run_stiff(gmin_only)
        counters = registry.snapshot()["counters"]
        # 1 failed plain attempt + one attempt per gmin ladder stage.
        assert counters["spice.recovery.attempts"] == 1 + len(GMIN_LADDER)


class TestTransientRungs:
    """Gentler failures recover on the earlier rungs."""

    def stiff_rc_diode(self, supply: float) -> Circuit:
        circuit = Circuit("rc-diode")
        circuit.add(VoltageSource("v1", "in", "0", dc(supply)))
        circuit.add(Resistor("r1", "in", "d", 100.0))
        circuit.add(Diode("d1", "d", "0"))
        circuit.add(Capacitor("cd", "d", "0", 1e-12))
        return circuit

    def run(self, supply: float, max_newton: int) -> dict:
        registry = obs.MetricsRegistry()
        with obs.instrumented(registry=registry, tracer=obs.Tracer()):
            simulate_transient(self.stiff_rc_diode(supply), t_stop=5e-10,
                               dt=1e-10,
                               recovery=RecoveryConfig(max_newton=max_newton))
        return registry.snapshot()["counters"]

    def test_substep_rung_recovers_moderate_stiffness(self):
        counters = self.run(supply=3.0, max_newton=10)
        assert counters.get("spice.recovery.substep", 0) >= 1
        assert "spice.recovery.exhausted" not in counters

    def test_source_rung_recovers_hard_stiffness(self):
        counters = self.run(supply=5.0, max_newton=8)
        assert counters.get("spice.recovery.source", 0) >= 1
        assert "spice.recovery.exhausted" not in counters


class TestDcRecovery:
    """The DC solver walks the same ladder (minus substep)."""

    def dc_diode(self) -> Circuit:
        circuit = Circuit("dc-diode")
        circuit.add(VoltageSource("v1", "in", "0", dc(5.0)))
        circuit.add(Resistor("r1", "in", "d", 100.0))
        circuit.add(Diode("d1", "d", "0"))
        return circuit

    def test_source_stepping_rescues_tight_budget(self):
        registry = obs.MetricsRegistry()
        with obs.instrumented(registry=registry, tracer=obs.Tracer()):
            solution = solve_dc(self.dc_diode(),
                                recovery=RecoveryConfig(max_newton=10))
        # 5 V across 100 ohm into a diode: ~0.6-0.9 V forward drop.
        assert 0.3 < solution["d"] < 1.0
        counters = registry.snapshot()["counters"]
        assert counters["spice.recovery.source"] == 1

    def test_healthy_solve_counts_as_newton_not_recovery(self):
        registry = obs.MetricsRegistry()
        with obs.instrumented(registry=registry, tracer=obs.Tracer()):
            solve_dc(self.dc_diode())
        counters = registry.snapshot()["counters"]
        assert counters["spice.recovery.newton"] == 1
        assert "spice.recovery.escalations" not in counters

    def test_exhausted_dc_solve_carries_report(self):
        bare = RecoveryConfig(max_newton=2, enable_damping=False,
                              enable_source=False)
        with pytest.raises(ConvergenceError) as excinfo:
            solve_dc(self.dc_diode(), recovery=bare)
        report = excinfo.value.recovery
        assert report is not None
        assert report.rungs_tried() == ("newton",)


class TestRecoveryConfigValidation:
    def test_rung_order_is_pinned(self):
        assert RUNGS == ("newton", "damping", "substep", "gmin", "source")

    def test_rejects_bad_max_newton(self):
        with pytest.raises(ConfigurationError):
            RecoveryConfig(max_newton=0)

    def test_rejects_source_ladder_not_ending_at_full(self):
        with pytest.raises(ConfigurationError):
            RecoveryConfig(source_ladder=(0.5, 0.9))

    def test_rejects_nonpositive_gmin(self):
        with pytest.raises(ConfigurationError):
            RecoveryConfig(gmin_ladder=(1e-3, 0.0))

    def test_report_rejects_unknown_rung(self):
        report = RecoveryReport(circuit="x")
        with pytest.raises(ConfigurationError):
            report.record("warp", "factor=9", converged=False)
