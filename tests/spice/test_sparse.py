"""The sparse MNA solve path: kernel, backend selection, contracts.

The sparse backend cannot be bit-identical to dense (the elimination
order differs), so its contract is two-sided:

* **dense-vs-sparse agreement**: every shared workload must agree
  within ``WAVEFORM_TOL`` volts at every node and timestep (the
  tolerance documented in ARCHITECTURE.md §15);
* **sparse run-to-run determinism**: the sparse path against itself
  must be *bit-identical* (``tobytes`` equality) under a fixed seed,
  serially and through ``--batch``/``--jobs`` ejection.

Both are enforced here, including a Hypothesis property across seeds
and block counts, plus the recovery-ladder and LRU-cache behaviours
the ISSUE names.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import FastDramDesign, obs
from repro.array.globalbitline import (build_globalbitline_read_circuit,
                                       globalbitline_initial_voltages)
from repro.errors import ConfigurationError
from repro.spice import simulate_transient, solve_dc
from repro.spice.linalg import lu_solve_dense
from repro.spice.mna import MnaSystem
from repro.spice.recovery import RecoveryConfig
from repro.spice.sparse import SparseContext
from repro.spice.stampplan import (SPARSE_AUTO_THRESHOLD, StampPlan,
                                   _LuCache, _MAX_LU_FACTORS,
                                   resolve_backend)
from repro.units import ns, ps

from tests.spice.test_recovery import GMIN_LADDER, stiff_diode_circuit
from tests.spice.test_stampplan import localblock_circuit

#: Dense-vs-sparse max-abs waveform tolerance, volts.  Measured
#: disagreement on the local-block and global-bitline workloads is
#: below 1e-12 V; the documented contract leaves three orders of
#: margin for platform variation.
WAVEFORM_TOL = 1e-9


def random_sparse_system(rng, n, extra=3):
    """A well-conditioned random sparse system (tridiagonal + extras)."""
    a = np.zeros((n, n))
    for i in range(n):
        a[i, i] = 4.0 + rng.uniform()
        if i:
            a[i, i - 1] = -1.0 - rng.uniform()
            a[i - 1, i] = -1.0 - rng.uniform()
    for _ in range(extra):
        i, j = rng.integers(0, n, size=2)
        a[i, j] += rng.uniform(-0.5, 0.5)
    b = rng.normal(size=n)
    return a, b


def context_for(a):
    flat = np.flatnonzero(a.ravel() != 0.0)
    return SparseContext(a.shape[0], flat), flat


class TestSparseKernel:
    @pytest.mark.parametrize("n", [2, 5, 16, 48])
    def test_matches_dense_solve(self, n):
        rng = np.random.default_rng(n)
        a, b = random_sparse_system(rng, n)
        ctx, flat = context_for(a)
        factors = ctx.factorize(a.ravel()[flat])
        x = ctx.solve(factors, b)
        np.testing.assert_allclose(x, lu_solve_dense(a, b),
                                   rtol=1e-9, atol=1e-12)

    def test_refactor_with_new_values_reuses_symbolic(self):
        rng = np.random.default_rng(3)
        a, b = random_sparse_system(rng, 12)
        ctx, flat = context_for(a)
        with obs.instrumented() as registry:
            ctx.factorize(a.ravel()[flat])
            scaled = 1.7 * a
            x = ctx.solve(ctx.factorize(scaled.ravel()[flat]), b)
            counters = registry.snapshot()["counters"]
        np.testing.assert_allclose(x, lu_solve_dense(scaled, b),
                                   rtol=1e-9, atol=1e-12)
        assert counters["spice.sparse.refactor"] == 2

    def test_run_to_run_bit_identity(self):
        rng = np.random.default_rng(5)
        a, b = random_sparse_system(rng, 20)
        ctx1, flat = context_for(a)
        ctx2, _ = context_for(a)
        x1 = ctx1.solve(ctx1.factorize(a.ravel()[flat]), b)
        x2 = ctx2.solve(ctx2.factorize(a.ravel()[flat]), b)
        assert x1.tobytes() == x2.tobytes()

    def test_zero_pivot_raises_singular(self):
        a = np.array([[1.0, 2.0], [2.0, 4.0]])
        ctx, flat = context_for(np.ones((2, 2)))
        with pytest.raises(np.linalg.LinAlgError, match="singular"):
            ctx.factorize(a.ravel()[flat])

    def test_structurally_empty_column_raises(self):
        a = np.array([[1.0, 0.0], [2.0, 0.0]])
        ctx, flat = context_for(a + np.eye(2) * 0)
        with pytest.raises(np.linalg.LinAlgError):
            ctx.factorize(a.ravel()[flat])

    def test_fill_ratio_gauge_set(self):
        rng = np.random.default_rng(6)
        a, _ = random_sparse_system(rng, 10)
        ctx, flat = context_for(a)
        with obs.instrumented() as registry:
            ctx.factorize(a.ravel()[flat])
            gauges = registry.snapshot()["gauges"]
        assert gauges["spice.sparse.fill_ratio"] >= 1.0
        assert ctx.fill_ratio >= 1.0


class TestBackendSelection:
    def test_invalid_backend_raises(self):
        with pytest.raises(ConfigurationError):
            resolve_backend("cholesky", 10)

    def test_auto_threshold(self):
        with obs.instrumented() as registry:
            assert resolve_backend(
                "auto", SPARSE_AUTO_THRESHOLD - 1) == "dense"
            assert resolve_backend(
                "auto", SPARSE_AUTO_THRESHOLD) == "sparse"
            counters = registry.snapshot()["counters"]
        assert counters["spice.sparse.auto.dense"] == 1
        assert counters["spice.sparse.auto.sparse"] == 1

    def test_sparse_requires_stamp_plan(self):
        circuit, initial = localblock_circuit()
        with pytest.raises(ConfigurationError):
            simulate_transient(circuit, t_stop=1 * ps, dt=1 * ps,
                               initial_voltages=initial,
                               stamp_plan=False, backend="sparse")

    def test_transient_span_carries_backend_tag(self):
        from repro.obs.tracing import Tracer

        circuit, initial = localblock_circuit()
        tracer = Tracer()
        with obs.instrumented(tracer=tracer):
            simulate_transient(circuit, t_stop=5 * ps, dt=1 * ps,
                               initial_voltages=initial,
                               backend="sparse")
        roots = [s for s in tracer.finished_roots()
                 if s.name == "spice.transient"]
        assert roots and roots[0].attrs["backend"] == "sparse"

    def test_auto_stays_dense_on_small_circuits(self):
        circuit, initial = localblock_circuit()
        assert MnaSystem(circuit).size < SPARSE_AUTO_THRESHOLD
        with obs.instrumented() as registry:
            simulate_transient(circuit, t_stop=5 * ps, dt=1 * ps,
                               initial_voltages=initial, backend="auto")
            counters = registry.snapshot()["counters"]
        assert counters["spice.sparse.auto.dense"] == 1


def gbl_workload(blocks=3, cells=3):
    cell = FastDramDesign().cell()
    circuit = build_globalbitline_read_circuit(
        cell, blocks=blocks, cells_per_lbl=cells)
    return circuit, globalbitline_initial_voltages(cell)


def run_backend(circuit, initial, backend, t_stop=0.3 * ns, dt=2.0 * ps,
                **kwargs):
    return simulate_transient(circuit, t_stop=t_stop, dt=dt,
                              initial_voltages=initial, backend=backend,
                              **kwargs)


def max_disagreement(a, b):
    return float(np.abs(a.data - b.data).max())


class TestDenseSparseAgreement:
    def test_localblock_within_tolerance(self):
        circuit, initial = localblock_circuit()
        dense = run_backend(circuit, initial, "dense", t_stop=1.0 * ns,
                            dt=1.0 * ps)
        sparse = run_backend(circuit, initial, "sparse", t_stop=1.0 * ns,
                             dt=1.0 * ps)
        assert max_disagreement(dense, sparse) < WAVEFORM_TOL

    def test_globalbitline_within_tolerance(self):
        circuit, initial = gbl_workload()
        dense = run_backend(circuit, initial, "dense")
        sparse = run_backend(circuit, initial, "sparse")
        assert max_disagreement(dense, sparse) < WAVEFORM_TOL

    def test_dc_within_tolerance(self):
        circuit, initial = gbl_workload()
        dense = solve_dc(circuit, initial_guess=initial, backend="dense")
        sparse = solve_dc(circuit, initial_guess=initial, backend="sparse")
        assert dense.keys() == sparse.keys()
        worst = max(abs(dense[k] - sparse[k]) for k in dense)
        assert worst < WAVEFORM_TOL


class TestSparseDeterminism:
    def test_transient_run_to_run_bit_identity(self):
        circuit, initial = gbl_workload()
        first = run_backend(circuit, initial, "sparse")
        second = run_backend(circuit, initial, "sparse")
        assert first.data.tobytes() == second.data.tobytes()

    @given(seed=st.integers(0, 2**16), blocks=st.integers(2, 5))
    @settings(max_examples=8, deadline=None)
    def test_property_across_seeds_and_block_counts(self, seed, blocks):
        """Sparse determinism and dense agreement across the sampled
        (seed, block-count) grid the acceptance criteria name."""
        rng = np.random.default_rng(seed)
        cell = FastDramDesign().cell()
        circuit = build_globalbitline_read_circuit(
            cell, blocks=blocks, cells_per_lbl=2,
            stored_value=int(rng.integers(0, 2)),
            selected_block=int(rng.integers(0, blocks)))
        initial = globalbitline_initial_voltages(cell)
        a = run_backend(circuit, initial, "sparse", t_stop=20 * ps)
        b = run_backend(circuit, initial, "sparse", t_stop=20 * ps)
        assert a.data.tobytes() == b.data.tobytes()
        dense = run_backend(circuit, initial, "dense", t_stop=20 * ps)
        assert max_disagreement(dense, a) < WAVEFORM_TOL


class TestSparseRecoveryLadder:
    def test_gmin_ladder_on_sparse_matches_dense(self):
        recovery = RecoveryConfig(max_newton=25, gmin_ladder=GMIN_LADDER)
        circuit = stiff_diode_circuit()
        dense = simulate_transient(circuit, t_stop=1e-9, dt=1e-10,
                                   initial_voltages={"in": 5.0},
                                   recovery=recovery, backend="dense")
        sparse = simulate_transient(circuit, t_stop=1e-9, dt=1e-10,
                                    initial_voltages={"in": 5.0},
                                    recovery=recovery, backend="sparse")
        assert max_disagreement(dense, sparse) < WAVEFORM_TOL

    def test_source_stepping_dc_on_sparse(self):
        recovery = RecoveryConfig(max_newton=25, gmin_ladder=GMIN_LADDER)
        circuit = stiff_diode_circuit()
        dense = solve_dc(circuit, recovery=recovery, backend="dense")
        sparse = solve_dc(circuit, recovery=recovery, backend="sparse")
        worst = max(abs(dense[k] - sparse[k]) for k in dense)
        assert worst < WAVEFORM_TOL


class TestLuCacheBound:
    def test_peak_entries_capped(self):
        cache = _LuCache(_MAX_LU_FACTORS)
        with obs.instrumented() as registry:
            for k in range(_MAX_LU_FACTORS + 5):
                cache.put(("key", k), object())
                assert len(cache) <= _MAX_LU_FACTORS
            counters = registry.snapshot()["counters"]
        assert counters["spice.lu.evictions"] == 5

    def test_lru_discipline_refreshes_on_hit(self):
        cache = _LuCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1  # refresh "a"; "b" becomes LRU
        cache.put("c", 3)
        assert cache.get("b") is None
        assert cache.get("a") == 1 and cache.get("c") == 3

    def test_plan_cache_stays_bounded_in_transient(self):
        """A long nonlinear transient generates far more distinct
        Jacobians than the cache holds; the bound must hold and
        evictions must be counted."""
        circuit, initial = localblock_circuit()
        with obs.instrumented() as registry:
            result = simulate_transient(circuit, t_stop=0.3 * ns,
                                        dt=1.0 * ps,
                                        initial_voltages=initial,
                                        backend="dense")
            counters = registry.snapshot()["counters"]
        assert result.data.shape[0] > 0
        assert counters["spice.lu.refactor"] > _MAX_LU_FACTORS
        assert counters["spice.lu.evictions"] > 0


class TestSparseObsCounters:
    def test_symbolic_cache_reuse_across_plans(self):
        from repro.spice.sparse import _symbolic_cache

        circuit, initial = gbl_workload(blocks=2, cells=2)
        _symbolic_cache.clear()  # earlier tests may have warmed it
        with obs.instrumented() as registry:
            run_backend(circuit, initial, "sparse", t_stop=10 * ps)
            run_backend(circuit, initial, "sparse", t_stop=10 * ps)
            counters = registry.snapshot()["counters"]
        assert counters["spice.sparse.symbolic"] == 1
        assert counters["spice.sparse.symbolic_reuse"] >= 1
        assert counters["spice.sparse.refactor"] > 0
