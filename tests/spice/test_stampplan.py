"""Equivalence proof for the compiled stamp-plan fast path.

The contract is *bit-identity*: the compiled plan and the legacy
per-element stamping loop must produce exactly equal solution matrices
(``np.array_equal``, not ``allclose``) on every circuit, including when
the recovery ladder escalates (gmin stepping, substep halving) and on
fault-injected refresh scenarios.  Any drift here means the fast path
changed numerical behaviour, which the benchmark speedup must never
buy.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import FastDramDesign, obs
from repro.array.localblock import build_localblock_read_circuit
from repro.errors import ConvergenceError
from repro.spice import (
    Capacitor,
    Circuit,
    Diode,
    MosfetElement,
    Resistor,
    StampPlan,
    VoltageSource,
    dc,
    simulate_transient,
    solve_dc,
    stamping_order,
)
from repro.spice.mna import MnaSystem
from repro.spice.recovery import RecoveryConfig
from repro.spice.stampplan import (
    _compile_mosfet_current,
    _compile_mosfet_magnitude,
)
from repro.units import ns, ps

from tests.spice.test_recovery import GMIN_LADDER, stiff_diode_circuit

_T_STOP = 1.0 * ns  # past SA enable (0.7 ns) and buffer enable (0.9 ns)
_DT = 1.0 * ps


def localblock_circuit(stored_value=0, refresh_only=False):
    cell = FastDramDesign().cell()
    circuit = build_localblock_read_circuit(cell, cells_per_lbl=16,
                                            stored_value=stored_value,
                                            refresh_only=refresh_only)
    initial = {"pre_rail": cell.bitline_precharge,
               "sa_rail": cell.bitline_precharge,
               "gbl_gnd": 0.3, "prech_ctl": 1.2}
    return circuit, initial


def both_paths(circuit, initial, **kwargs):
    fast = simulate_transient(circuit, t_stop=_T_STOP, dt=_DT,
                              initial_voltages=initial, stamp_plan=True,
                              **kwargs)
    legacy = simulate_transient(circuit, t_stop=_T_STOP, dt=_DT,
                                initial_voltages=initial, stamp_plan=False,
                                **kwargs)
    return fast, legacy


class TestTransientBitIdentity:
    def test_localblock_read_is_bit_identical(self):
        fast, legacy = both_paths(*localblock_circuit(stored_value=0))
        assert np.array_equal(fast.data, legacy.data)
        assert np.array_equal(fast.time, legacy.time)
        assert fast.node_index == legacy.node_index

    def test_localblock_read_of_one_is_bit_identical(self):
        fast, legacy = both_paths(*localblock_circuit(stored_value=1))
        assert np.array_equal(fast.data, legacy.data)

    def test_fault_injected_refresh_is_bit_identical(self):
        """Localised refresh (GBL floating) of a weak cell: the stored
        '1' has decayed to mid-rail, the fault-injection scenario the
        refresh path exists to repair."""
        circuit, initial = localblock_circuit(stored_value=1,
                                              refresh_only=True)
        initial = dict(initial, cell=0.45)  # decayed weak-cell level
        fast, legacy = both_paths(circuit, initial)
        assert np.array_equal(fast.data, legacy.data)

    def test_stiff_diode_under_gmin_ladder_is_bit_identical(self):
        """The recovery ladder escalates to gmin stepping — the exact
        path that rewrites the linear system mid-solve and must
        invalidate the factorization cache on both rails."""
        recovery = RecoveryConfig(max_newton=25, enable_damping=False,
                                  enable_substep=False, enable_source=False,
                                  gmin_ladder=GMIN_LADDER)
        circuit = stiff_diode_circuit()
        fast = simulate_transient(circuit, t_stop=1e-9, dt=1e-10,
                                  initial_voltages={"in": 5.0},
                                  recovery=recovery, stamp_plan=True)
        legacy = simulate_transient(circuit, t_stop=1e-9, dt=1e-10,
                                    initial_voltages={"in": 5.0},
                                    recovery=recovery, stamp_plan=False)
        assert np.array_equal(fast.data, legacy.data)

    def test_substep_halving_walks_identically(self):
        """Substep halving changes dt (a factorization-cache
        invalidation point); with gmin and source disabled the ladder
        is exhausted — both paths must fail on the same rung with the
        same transcript."""
        recovery = RecoveryConfig(max_newton=25, enable_gmin=False,
                                  enable_source=False)
        circuit = stiff_diode_circuit()
        transcripts = []
        for stamp_plan in (True, False):
            with pytest.raises(ConvergenceError) as excinfo:
                simulate_transient(circuit, t_stop=1e-9, dt=1e-10,
                                   initial_voltages={"in": 5.0},
                                   recovery=recovery, stamp_plan=stamp_plan)
            transcripts.append([(a.rung, a.detail, a.converged)
                                for a in excinfo.value.recovery.attempts])
        assert transcripts[0] == transcripts[1]

    def test_trapezoidal_integrator_is_bit_identical(self):
        circuit = stiff_diode_circuit(v_t=0.05)
        fast = simulate_transient(circuit, t_stop=1e-9, dt=1e-11,
                                  initial_voltages={"in": 5.0},
                                  integrator="trap", stamp_plan=True)
        legacy = simulate_transient(circuit, t_stop=1e-9, dt=1e-11,
                                    initial_voltages={"in": 5.0},
                                    integrator="trap", stamp_plan=False)
        assert np.array_equal(fast.data, legacy.data)


class TestDcEquivalence:
    def test_localblock_dc_is_identical(self):
        circuit, _initial = localblock_circuit()
        assert (solve_dc(circuit, stamp_plan=True)
                == solve_dc(circuit, stamp_plan=False))

    def test_starved_newton_dc_recovers_identically(self):
        """A 15-iteration Newton budget escalates the DC ladder to
        source stepping — the rung that rescales the source vector and
        must invalidate the factorization cache on both paths."""
        recovery = RecoveryConfig(max_newton=15, gmin_ladder=GMIN_LADDER)
        circuit = stiff_diode_circuit(v_t=0.02)
        with obs.instrumented() as registry:
            fast = solve_dc(circuit, recovery=recovery, stamp_plan=True)
            counters = registry.snapshot()["counters"]
        assert counters["spice.recovery.source"] == 1  # the ladder ran
        assert fast == solve_dc(circuit, recovery=recovery,
                                stamp_plan=False)


class TestCompiledDevices:
    def test_compiled_mosfet_current_matches_element(self):
        circuit, _initial = localblock_circuit()
        elements = [el for el in circuit.elements
                    if isinstance(el, MosfetElement)]
        assert elements  # NMOS access/SA plus PMOS SA devices
        grid = np.linspace(-0.2, 1.4, 9)
        for element in elements:
            compiled = _compile_mosfet_current(element)
            for v_d in grid:
                for v_g in grid:
                    for v_s in (0.0, 0.3, 1.2):
                        assert compiled(v_d, v_g, v_s) == element.current(
                            v_d, v_g, v_s)

    def test_compiled_magnitude_is_finite_over_the_grid(self):
        circuit, _initial = localblock_circuit()
        element = next(el for el in circuit.elements
                       if isinstance(el, MosfetElement))
        magnitude = _compile_mosfet_magnitude(element)
        for vgs in np.linspace(-0.5, 1.5, 7):
            for vds in np.linspace(0.0, 1.5, 7):
                assert np.isfinite(magnitude(vgs, vds))


class _PythonDiode(Diode):
    """A Diode subclass the plan cannot batch (unknown type), forcing
    the generic per-element compiled path."""


class TestBatchedVsGenericPath:
    @staticmethod
    def _divider(diode_cls):
        circuit = Circuit("divider")
        circuit.add(VoltageSource("v1", "in", "0", dc(2.0)))
        circuit.add(Resistor("r1", "in", "mid", 10e3))
        circuit.add(diode_cls("d1", "mid", "0", v_t=0.026, v_clip=0.8))
        circuit.add(Capacitor("c1", "mid", "0", 1e-12))
        return circuit

    def test_generic_path_matches_batched_path(self):
        batched = simulate_transient(self._divider(Diode), t_stop=1e-9,
                                     dt=1e-11, stamp_plan=True)
        generic = simulate_transient(self._divider(_PythonDiode),
                                     t_stop=1e-9, dt=1e-11, stamp_plan=True)
        assert np.array_equal(batched.data, generic.data)

    def test_generic_path_matches_legacy(self):
        circuit = self._divider(_PythonDiode)
        fast = simulate_transient(circuit, t_stop=1e-9, dt=1e-11,
                                  stamp_plan=True)
        legacy = simulate_transient(circuit, t_stop=1e-9, dt=1e-11,
                                    stamp_plan=False)
        assert np.array_equal(fast.data, legacy.data)


class TestFactorizationCache:
    def test_linear_circuit_reuses_one_factorization(self):
        """A linear RC ladder has a constant Jacobian: the plan must
        factorize once and back-substitute every following timestep."""
        circuit = Circuit("rc-ladder")
        circuit.add(VoltageSource("v1", "n0", "0", dc(1.0)))
        for i in range(4):
            circuit.add(Resistor(f"r{i}", f"n{i}", f"n{i + 1}", 1e3))
            circuit.add(Capacitor(f"c{i}", f"n{i + 1}", "0", 1e-12))
        with obs.instrumented() as registry:
            simulate_transient(circuit, t_stop=1e-9, dt=1e-11,
                               stamp_plan=True)
            counters = registry.snapshot()["counters"]
        assert counters["spice.lu.refactor"] == 1
        assert counters["spice.lu.reuse"] > counters["spice.lu.refactor"]

    def test_nonlinear_circuit_refactors_as_companions_move(self):
        circuit, initial = localblock_circuit()
        with obs.instrumented() as registry:
            simulate_transient(circuit, t_stop=0.2 * ns, dt=_DT,
                               initial_voltages=initial, stamp_plan=True)
            counters = registry.snapshot()["counters"]
        assert counters["spice.lu.refactor"] > 0

    def test_newton_iteration_histogram_is_emitted(self):
        circuit, initial = localblock_circuit()
        with obs.instrumented() as registry:
            simulate_transient(circuit, t_stop=0.05 * ns, dt=_DT,
                               initial_voltages=initial, stamp_plan=True)
            snapshot = registry.snapshot()
        histogram = snapshot["histograms"]["spice.newton.iterations"]
        assert histogram["count"] == 50  # one observation per timestep


class TestStampingOrder:
    def test_order_groups_linear_elements_then_the_rest(self):
        """Linear elements come grouped by type (circuit order within a
        group), nonlinear elements trail in circuit order — the
        documented canonical order both solver paths share."""
        circuit, _initial = localblock_circuit()
        order = stamping_order(circuit)
        assert sorted(el.name for el in order) == sorted(
            el.name for el in circuit.elements)
        kinds = [type(el) for el in order]
        first_nonlinear = min(
            i for i, k in enumerate(kinds) if k is MosfetElement)
        assert all(k is not Resistor and k is not Capacitor
                   for k in kinds[first_nonlinear:])
        circuit_pos = {el.name: i for i, el in enumerate(circuit.elements)}
        for kind in (Capacitor, MosfetElement):
            positions = [circuit_pos[el.name] for el in order
                         if type(el) is kind]
            assert positions == sorted(positions)

    def test_plan_holds_its_system(self):
        circuit, _initial = localblock_circuit()
        system = MnaSystem(circuit)
        assert StampPlan(system).system is system


class TestPropertyEquivalence:
    @given(resistance=st.floats(min_value=1e3, max_value=1e7),
           v_t=st.floats(min_value=0.02, max_value=0.2),
           supply=st.floats(min_value=0.5, max_value=5.0))
    @settings(max_examples=25, deadline=None)
    def test_dc_solution_identical_for_random_diode_dividers(
            self, resistance, v_t, supply):
        circuit = Circuit("prop-divider")
        circuit.add(VoltageSource("v1", "in", "0", dc(supply)))
        circuit.add(Resistor("r1", "in", "d", resistance))
        circuit.add(Diode("d1", "d", "0", v_t=v_t, v_clip=0.8))
        assert (solve_dc(circuit, stamp_plan=True)
                == solve_dc(circuit, stamp_plan=False))
