"""Tests for the standard-cell subcircuits.

The ring-oscillator test is the transistor-level cross-check of the
analytic gate delay the whole architecture timing model rests on.
"""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.spice import (
    Capacitor,
    Circuit,
    Scope,
    VoltageSource,
    add_inverter,
    add_inverter_chain,
    add_latch_sense_amp,
    build_ring_oscillator,
    crossing_time,
    dc,
    pulse,
    simulate_transient,
    solve_dc,
)
from repro.units import fF, ns, ps


class TestInverter:
    def test_dc_levels(self, logic_node):
        for vin, expect_high in ((0.0, True), (1.2, False)):
            c = Circuit("inv")
            c.add(VoltageSource("vdd", "vdd", "0", dc(1.2)))
            c.add(VoltageSource("vin", "a", "0", dc(vin)))
            add_inverter(Scope(c, "x1", {"in": "a", "out": "y",
                                         "vdd": "vdd"}), logic_node)
            out = solve_dc(c)["y"]
            assert (out > 1.1) == expect_high

    def test_transient_inversion(self, logic_node):
        c = Circuit("inv-t")
        c.add(VoltageSource("vdd", "vdd", "0", dc(1.2)))
        c.add(VoltageSource("vin", "a", "0",
                            pulse(0.0, 1.2, delay=50 * ps, rise=10 * ps,
                                  width=10 * ns)))
        add_inverter(Scope(c, "x1", {"in": "a", "out": "y", "vdd": "vdd"}),
                     logic_node)
        c.add(Capacitor("cl", "y", "0", 5 * fF))
        result = simulate_transient(c, 1 * ns, 1 * ps,
                                    initial_voltages={"vdd": 1.2, "y": 1.2})
        fall = crossing_time(result, "y", 0.6, "fall")
        assert 50 * ps < fall < 300 * ps
        assert result.final_voltage("y") < 0.05


class TestInverterChain:
    def test_even_chain_is_buffer(self, logic_node):
        c = Circuit("chain")
        c.add(VoltageSource("vdd", "vdd", "0", dc(1.2)))
        c.add(VoltageSource("vin", "a", "0", dc(1.2)))
        add_inverter_chain(Scope(c, "x1", {"in": "a", "out": "y",
                                           "vdd": "vdd"}),
                           logic_node, stages=4)
        assert solve_dc(c)["y"] > 1.1

    def test_odd_chain_inverts(self, logic_node):
        c = Circuit("chain")
        c.add(VoltageSource("vdd", "vdd", "0", dc(1.2)))
        c.add(VoltageSource("vin", "a", "0", dc(1.2)))
        add_inverter_chain(Scope(c, "x1", {"in": "a", "out": "y",
                                           "vdd": "vdd"}),
                           logic_node, stages=3)
        assert solve_dc(c)["y"] < 0.1

    def test_argument_validation(self, logic_node):
        scope = Scope(Circuit("x"), "x1")
        with pytest.raises(ConfigurationError):
            add_inverter_chain(scope, logic_node, stages=0)


class TestRingOscillator:
    def test_oscillates(self, logic_node):
        circuit = build_ring_oscillator(logic_node, stages=5)
        initial = {"vdd": 1.2, "ring0": 0.0}
        for stage in range(1, 5):
            initial[f"ring{stage}"] = 1.2 if stage % 2 else 0.0
        result = simulate_transient(circuit, 1.0 * ns, 0.5 * ps,
                                    initial_voltages=initial)
        wave = result.voltage("ring0")
        # Real oscillation: multiple full swings in the window.
        crossings = np.sum(np.diff(wave > 0.6).astype(int) != 0)
        assert crossings >= 4

    def test_period_consistent_with_analytic_delay(self, logic_node):
        """Ring period = 2 * stages * t_stage; t_stage must agree with
        the analytic FO1-class delay within a factor of ~2.5 — the
        transistor-level anchor of the architecture timing model."""
        circuit = build_ring_oscillator(logic_node, stages=5)
        initial = {"vdd": 1.2, "ring0": 0.0}
        for stage in range(1, 5):
            initial[f"ring{stage}"] = 1.2 if stage % 2 else 0.0
        result = simulate_transient(circuit, 1.2 * ns, 0.5 * ps,
                                    initial_voltages=initial)
        t1 = crossing_time(result, "ring0", 0.6, "rise", start=0.2 * ns)
        t2 = crossing_time(result, "ring0", 0.6, "rise", start=t1 + 1e-12)
        period = t2 - t1
        stage_delay = period / (2 * 5)
        from repro.tech import Mosfet, Polarity, VtFlavor
        nmos = Mosfet(logic_node, Polarity.NMOS, VtFlavor.SVT,
                      width=logic_node.width_units(2.0))
        pmos = Mosfet(logic_node, Polarity.PMOS, VtFlavor.SVT,
                      width=logic_node.width_units(4.0))
        c_load = (nmos.gate_capacitance() + pmos.gate_capacitance()
                  + nmos.junction_capacitance()
                  + pmos.junction_capacitance())
        r_eff = 0.5 * (nmos.on_resistance() + pmos.on_resistance())
        analytic = 0.69 * r_eff * c_load
        assert stage_delay == pytest.approx(analytic, rel=1.5)
        assert 0.5 * ps < stage_delay < 50 * ps

    def test_even_ring_rejected(self, logic_node):
        with pytest.raises(ConfigurationError):
            build_ring_oscillator(logic_node, stages=4)

    def test_loaded_ring_slower(self, logic_node):
        def period(load):
            circuit = build_ring_oscillator(logic_node, stages=5,
                                            load_per_stage=load)
            initial = {"vdd": 1.2, "ring0": 0.0}
            for stage in range(1, 5):
                initial[f"ring{stage}"] = 1.2 if stage % 2 else 0.0
            result = simulate_transient(circuit, 2.5 * ns, 1 * ps,
                                        initial_voltages=initial)
            t1 = crossing_time(result, "ring0", 0.6, "rise",
                               start=0.3 * ns)
            t2 = crossing_time(result, "ring0", 0.6, "rise",
                               start=t1 + 1e-12)
            return t2 - t1

        assert period(10 * fF) > 2 * period(0.0)


class TestLatchSenseAmp:
    def test_resolves_small_differential(self, logic_node):
        c = Circuit("sa")
        c.add(VoltageSource("vdd", "vdd", "0", dc(1.2)))
        c.add(VoltageSource("ven", "en", "0",
                            pulse(0.0, 1.2, delay=0.2 * ns, rise=20 * ps,
                                  width=10 * ns)))
        c.add(Capacitor("cb", "bit", "0", 10 * fF, initial_voltage=0.65))
        c.add(Capacitor("cbb", "bitb", "0", 10 * fF, initial_voltage=0.55))
        add_latch_sense_amp(Scope(c, "sa1", {"bit": "bit", "bitb": "bitb",
                                             "enable": "en",
                                             "vdd": "vdd"}), logic_node)
        result = simulate_transient(c, 2 * ns, 1 * ps,
                                    initial_voltages={"vdd": 1.2,
                                                      "bit": 0.65,
                                                      "bitb": 0.55})
        assert result.final_voltage("bit") > 1.0
        assert result.final_voltage("bitb") < 0.2

    def test_polarity_follows_input(self, logic_node):
        c = Circuit("sa2")
        c.add(VoltageSource("vdd", "vdd", "0", dc(1.2)))
        c.add(VoltageSource("ven", "en", "0",
                            pulse(0.0, 1.2, delay=0.2 * ns, rise=20 * ps,
                                  width=10 * ns)))
        c.add(Capacitor("cb", "bit", "0", 10 * fF, initial_voltage=0.55))
        c.add(Capacitor("cbb", "bitb", "0", 10 * fF, initial_voltage=0.65))
        add_latch_sense_amp(Scope(c, "sa1", {"bit": "bit", "bitb": "bitb",
                                             "enable": "en",
                                             "vdd": "vdd"}), logic_node)
        result = simulate_transient(c, 2 * ns, 1 * ps,
                                    initial_voltages={"vdd": 1.2,
                                                      "bit": 0.55,
                                                      "bitb": 0.65})
        assert result.final_voltage("bit") < 0.2
        assert result.final_voltage("bitb") > 1.0
