"""Tests for hierarchical netlist scopes."""

import pytest

from repro.errors import NetlistError
from repro.spice import Circuit, Resistor, Scope, VoltageSource, dc, solve_dc


def build_divider(scope: Scope, r_top: float, r_bot: float) -> None:
    scope.add(Resistor(scope.name("rt"), scope.node("in"),
                       scope.node("mid"), r_top))
    scope.add(Resistor(scope.name("rb"), scope.node("mid"),
                       scope.node("out"), r_bot))


class TestScopeNaming:
    def test_ports_resolve_to_parent(self):
        c = Circuit("t")
        scope = Scope(c, "x1", {"in": "vin", "out": "0"})
        assert scope.node("in") == "vin"
        assert scope.node("out") == "0"

    def test_internal_nodes_prefixed(self):
        scope = Scope(Circuit("t"), "x1")
        assert scope.node("mid") == "x1.mid"
        assert scope.name("r1") == "x1.r1"

    def test_ground_is_global(self):
        scope = Scope(Circuit("t"), "x1")
        assert scope.node("0") == "0"

    def test_instance_name_validated(self):
        with pytest.raises(NetlistError):
            Scope(Circuit("t"), "")
        with pytest.raises(NetlistError):
            Scope(Circuit("t"), "a.b")

    def test_child_scopes_nest(self):
        c = Circuit("t")
        parent = Scope(c, "x1", {"in": "vin"})
        child = parent.child("y", ports={"a": "in", "b": "local"})
        assert child.node("a") == "vin"          # via parent port
        assert child.node("b") == "x1.local"     # parent-internal node
        assert child.node("own") == "x1/y.own"   # child-internal node


class TestInstantiation:
    def test_two_instances_isolated(self):
        c = Circuit("two")
        c.add(VoltageSource("v1", "vin", "0", dc(1.0)))
        build_divider(Scope(c, "x1", {"in": "vin", "out": "0"}), 1e3, 1e3)
        build_divider(Scope(c, "x2", {"in": "vin", "out": "0"}), 3e3, 1e3)
        op = solve_dc(c)
        assert op["x1.mid"] == pytest.approx(0.5, abs=1e-6)
        assert op["x2.mid"] == pytest.approx(0.25, abs=1e-6)

    def test_same_instance_twice_collides(self):
        c = Circuit("dup")
        build_divider(Scope(c, "x1", {"in": "a", "out": "0"}), 1e3, 1e3)
        with pytest.raises(NetlistError):
            build_divider(Scope(c, "x1", {"in": "a", "out": "0"}), 1e3, 1e3)
