"""Tests for the transient engine against closed-form circuit behaviour."""

import math

import numpy as np
import pytest

from repro.errors import ConfigurationError, SimulationError
from repro.spice import (
    Capacitor,
    Circuit,
    Resistor,
    VoltageSource,
    crossing_time,
    dc,
    pulse,
    simulate_transient,
)
from repro.units import kohm, ns, pF, ps


def rc_circuit(tau_r=1 * kohm, tau_c=1 * pF) -> Circuit:
    c = Circuit("rc")
    c.add(VoltageSource("v1", "in", "0",
                        pulse(0.0, 1.0, delay=0.1 * ns, rise=1 * ps,
                              width=1000 * ns)))
    c.add(Resistor("r1", "in", "out", tau_r))
    c.add(Capacitor("c1", "out", "0", tau_c))
    return c


class TestRcCharge:
    def test_time_constant(self):
        result = simulate_transient(rc_circuit(), 8 * ns, 5 * ps)
        t63 = crossing_time(result, "out", 1 - math.exp(-1), "rise")
        assert (t63 - 0.1 * ns) == pytest.approx(1 * ns, rel=0.02)

    def test_final_value(self):
        result = simulate_transient(rc_circuit(), 10 * ns, 10 * ps)
        assert result.final_voltage("out") == pytest.approx(1.0, abs=1e-3)

    def test_trapezoidal_matches_analytic_better(self):
        """On a smooth RC decay (no source edges) trapezoidal integration
        beats backward Euler at the same step size."""
        dt = 100 * ps
        analytic = math.exp(-1)

        def error(integrator: str) -> float:
            c = Circuit("decay")
            c.add(Resistor("r1", "a", "0", 1 * kohm))
            c.add(Capacitor("c1", "a", "0", 1 * pF, initial_voltage=1.0))
            result = simulate_transient(c, 2 * ns, dt, integrator=integrator)
            idx = int(round(1e-9 / dt))  # sample at t = tau
            return abs(float(result.voltage("a")[idx]) - analytic)

        assert error("trap") < 0.3 * error("be")

    def test_initial_conditions_respected(self):
        c = Circuit("ic")
        c.add(Resistor("r1", "a", "0", 1 * kohm))
        c.add(Capacitor("c1", "a", "0", 1 * pF, initial_voltage=1.0))
        result = simulate_transient(c, 5 * ns, 5 * ps)
        assert result.voltage("a")[0] == pytest.approx(1.0)
        # Discharges with tau = 1 ns.
        t37 = crossing_time(result, "a", math.exp(-1), "fall")
        assert t37 == pytest.approx(1 * ns, rel=0.02)

    def test_explicit_initial_voltages_override(self):
        c = Circuit("ic2")
        c.add(Resistor("r1", "a", "0", 1 * kohm))
        c.add(Capacitor("c1", "a", "0", 1 * pF, initial_voltage=1.0))
        result = simulate_transient(c, 1 * ns, 5 * ps,
                                    initial_voltages={"a": 0.5})
        assert result.voltage("a")[0] == pytest.approx(0.5)


class TestChargeConservation:
    def test_capacitive_divider(self):
        """Two caps sharing charge settle at the capacitance-weighted mean."""
        c = Circuit("share")
        c.add(Capacitor("c1", "a", "0", 3 * pF, initial_voltage=1.0))
        c.add(Capacitor("c2", "b", "0", 1 * pF, initial_voltage=0.0))
        c.add(Resistor("r1", "a", "b", 1 * kohm))
        result = simulate_transient(c, 50 * ns, 20 * ps)
        expected = 3.0 / 4.0
        assert result.final_voltage("a") == pytest.approx(expected, rel=1e-3)
        assert result.final_voltage("b") == pytest.approx(expected, rel=1e-3)


class TestResultAccess:
    def test_time_axis(self):
        result = simulate_transient(rc_circuit(), 1 * ns, 100 * ps)
        assert len(result.time) == 11
        assert result.time[0] == 0.0
        assert result.time[-1] == pytest.approx(1 * ns)

    def test_ground_voltage_is_zero(self):
        result = simulate_transient(rc_circuit(), 1 * ns, 100 * ps)
        assert np.all(result.voltage("0") == 0.0)

    def test_unknown_node_raises(self):
        result = simulate_transient(rc_circuit(), 1 * ns, 100 * ps)
        with pytest.raises(SimulationError):
            result.voltage("nope")

    def test_unknown_source_raises(self):
        result = simulate_transient(rc_circuit(), 1 * ns, 100 * ps)
        with pytest.raises(SimulationError):
            result.branch_current("r1")

    def test_branch_current_sign_convention(self):
        """A delivering source carries negative branch current."""
        result = simulate_transient(rc_circuit(), 1 * ns, 10 * ps)
        i = result.branch_current("v1")
        # While charging, current is delivered (negative by convention).
        assert i[30] < 0


class TestArgumentValidation:
    def test_rejects_zero_tstop(self):
        with pytest.raises(ConfigurationError, match="t_stop"):
            simulate_transient(rc_circuit(), 0.0, 1 * ps)

    def test_rejects_negative_dt(self):
        with pytest.raises(ConfigurationError, match="dt"):
            simulate_transient(rc_circuit(), 1 * ns, -1 * ps)

    def test_rejects_non_finite_grid(self):
        import math
        with pytest.raises(ConfigurationError, match="not finite"):
            simulate_transient(rc_circuit(), math.nan, 1 * ps)
        with pytest.raises(ConfigurationError, match="not finite"):
            simulate_transient(rc_circuit(), 1 * ns, math.inf)

    def test_rejects_bad_integrator(self):
        with pytest.raises(SimulationError):
            simulate_transient(rc_circuit(), 1 * ns, 1 * ps,
                               integrator="euler")

    def test_rejects_dt_longer_than_tstop(self):
        with pytest.raises(ConfigurationError, match="exceeds t_stop"):
            simulate_transient(rc_circuit(), 1 * ps, 1 * ns)

    def test_singular_circuit_raises(self):
        c = Circuit("singular")
        # A node connected only through a current source loop to itself
        # cannot be solved.
        from repro.spice import CurrentSource
        c.add(CurrentSource("i1", "0", "a", dc(1e-3)))
        with pytest.raises(SimulationError):
            simulate_transient(c, 1 * ns, 100 * ps)
