"""Tests for the SRAM baseline model assembly."""

import pytest

from repro.errors import ConfigurationError
from repro.sramref import SramBaselineDesign
from repro.tech import VtFlavor
from repro.units import kb


class TestAssembly:
    def test_default_build(self, sram_macro_128kb):
        org = sram_macro_128kb.organization
        assert org.total_bits == 128 * kb
        assert org.cells_per_lbl == 16
        assert not org.cell.is_dynamic

    def test_static_mechanism(self, sram_macro_128kb):
        assert sram_macro_128kb.static_power().mechanism == "leakage"

    def test_tunable_sense_amplifiers(self, sram_macro_128kb):
        """The [10] design's signature feature."""
        assert sram_macro_128kb.local_sa.tunable
        assert sram_macro_128kb.global_sa.tunable

    def test_rejects_nonpositive_bits(self):
        with pytest.raises(ConfigurationError):
            SramBaselineDesign().build(0)

    def test_custom_flavor(self):
        hvt = SramBaselineDesign(cell_flavor=VtFlavor.HVT).build(128 * kb)
        svt = SramBaselineDesign(cell_flavor=VtFlavor.SVT).build(128 * kb)
        assert (hvt.static_power().power < 0.3 * svt.static_power().power)

    def test_custom_capacity(self):
        macro = SramBaselineDesign().build(512 * kb)
        assert macro.organization.total_bits == 512 * kb
