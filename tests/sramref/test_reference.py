"""Tests for the published-SRAM calibration anchors."""

import pytest

from repro.errors import CalibrationError
from repro.sramref import PUBLISHED_REFERENCE
from repro.units import MHz, kb, ns, pJ


class TestPublishedFigures:
    def test_identity(self):
        ref = PUBLISHED_REFERENCE
        assert ref.capacity_bits == 128 * kb
        assert ref.energy_per_access == pytest.approx(3.6 * pJ)
        assert ref.nominal_frequency == pytest.approx(480 * MHz)
        assert ref.boost_frequency == pytest.approx(850 * MHz)

    def test_cycle_times(self):
        assert PUBLISHED_REFERENCE.nominal_cycle_time == pytest.approx(
            2.083 * ns, rel=0.01)
        assert PUBLISHED_REFERENCE.boost_cycle_time == pytest.approx(
            1.176 * ns, rel=0.01)


class TestChecks:
    def test_energy_in_band_passes(self):
        error = PUBLISHED_REFERENCE.check_energy(3.2 * pJ)
        assert error == pytest.approx(-0.111, rel=0.01)

    def test_energy_out_of_band_raises(self):
        with pytest.raises(CalibrationError):
            PUBLISHED_REFERENCE.check_energy(10 * pJ)

    def test_access_time_in_band_passes(self):
        error = PUBLISHED_REFERENCE.check_access_time(1.0 * ns)
        assert abs(error) < 0.45

    def test_access_time_out_of_band_raises(self):
        with pytest.raises(CalibrationError):
            PUBLISHED_REFERENCE.check_access_time(5 * ns)


class TestModelAgainstAnchors:
    def test_modelled_energy_within_tolerance(self, sram_macro_128kb):
        """The calibration guard: our SRAM instance must stay near the
        silicon numbers, or every DRAM ratio in the paper reproduction
        loses its meaning."""
        PUBLISHED_REFERENCE.check_energy(
            sram_macro_128kb.read_energy().total)

    def test_modelled_access_within_tolerance(self, sram_macro_128kb):
        PUBLISHED_REFERENCE.check_access_time(
            sram_macro_128kb.access_time())
