"""Tests for the routing-energy comparison (paper Sec. I)."""

import pytest

from repro.errors import ConfigurationError
from repro.stack3d import compare_links, offchip_link, onchip_link, tsv_link


class TestSec1Claims:
    def test_tsv_cheapest_per_bit(self):
        tsv = tsv_link(die_area=25e-6)
        off = offchip_link()
        on = onchip_link()
        assert tsv.energy_per_bit < on.energy_per_bit < off.energy_per_bit

    def test_tsv_two_orders_below_offchip(self):
        """'3D vias … have less parasitic capacitance than off-chip
        connections' — quantified: >= 100x less energy per bit."""
        ratio = offchip_link().energy_per_bit / tsv_link(25e-6).energy_per_bit
        assert ratio > 100

    def test_tsv_highest_aggregate_bandwidth(self):
        tsv = tsv_link(die_area=25e-6)
        assert tsv.aggregate_bandwidth > offchip_link().aggregate_bandwidth

    def test_bandwidth_energy_tradeoff_summary(self):
        result = compare_links()
        assert (result["3d-tsv"]["power_w"]
                < result["off-chip"]["power_w"] / 50)


class TestLinkModel:
    def test_power_linear_in_bandwidth(self):
        link = tsv_link(25e-6)
        assert link.power_at(2e9) == pytest.approx(2 * link.power_at(1e9))

    def test_power_rejects_overload(self):
        link = offchip_link(pin_count=8)
        with pytest.raises(ConfigurationError):
            link.power_at(link.aggregate_bandwidth * 2)

    def test_signal_fraction_validated(self):
        with pytest.raises(ConfigurationError):
            tsv_link(25e-6, signal_fraction=0.0)

    def test_pin_count_validated(self):
        with pytest.raises(ConfigurationError):
            offchip_link(pin_count=0)

    def test_more_area_more_links(self):
        assert tsv_link(100e-6).max_links > tsv_link(25e-6).max_links
