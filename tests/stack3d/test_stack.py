"""Tests for die stacks and the paper Fig. 2 hybrid cache system."""

import pytest

from repro.errors import ConfigurationError
from repro.stack3d import Die, DieStack, hybrid_cache_stack
from repro.units import Mb, kb


@pytest.fixture(scope="module")
def stack():
    return hybrid_cache_stack()


class TestHybridStack:
    def test_two_dies(self, stack):
        assert [d.kind for d in stack.dies] == ["logic", "memory"]

    def test_memory_die_carries_both_levels(self, stack):
        memory = stack.dies[1]
        assert len(memory.macros) == 2
        l1, l2 = memory.macros
        assert l1.organization.total_bits == 128 * kb
        assert l2.organization.total_bits == 2 * Mb

    def test_l2_denser_than_l1(self, stack):
        """The L2 uses coarse granularity: more bits per mm^2."""
        l1, l2 = stack.dies[1].macros
        density_l1 = l1.organization.total_bits / l1.area()
        density_l2 = l2.organization.total_bits / l2.area()
        assert density_l2 > density_l1

    def test_l2_slower_than_l1(self, stack):
        l1, l2 = stack.dies[1].macros
        assert l2.access_time() > l1.access_time()

    def test_total_capacity(self, stack):
        assert stack.memory_capacity() == 128 * kb + 2 * Mb

    def test_interface_is_tsv_scale(self, stack):
        link = stack.interface()
        assert link.max_links > 500
        assert link.energy_per_bit < 1e-13


class TestValidation:
    def test_macros_must_fit_on_die(self, dram_macro_128kb):
        with pytest.raises(ConfigurationError):
            Die(name="tiny", kind="memory", area=1e-9,
                macros=(dram_macro_128kb,))

    def test_unknown_die_kind_rejected(self):
        with pytest.raises(ConfigurationError):
            Die(name="x", kind="fpga", area=1e-6)

    def test_stack_needs_two_dies(self):
        with pytest.raises(ConfigurationError):
            DieStack(dies=(Die(name="solo", kind="logic", area=1e-6),))

    def test_tsv_only_between_adjacent(self, stack):
        with pytest.raises(ConfigurationError):
            stack.interface(0, 0)

    def test_footprint_is_largest_die(self, stack):
        assert stack.footprint == max(d.area for d in stack.dies)
