"""Tests for the stack thermal model and refresh coupling."""

import pytest

from repro.errors import ConfigurationError
from repro.refresh import TemperatureAdaptiveRefresh
from repro.stack3d import (
    RefreshThermalCoupling,
    StackThermalModel,
    ThermalLayer,
)


def two_die_stack(logic_power: float = 2.0,
                  sink_resistance: float = 2.0) -> StackThermalModel:
    return StackThermalModel(
        layers=(ThermalLayer("logic", power=logic_power, area=25e-6),
                ThermalLayer("memory", power=0.05, area=25e-6)),
        ambient=318.0,
        sink_resistance=sink_resistance,
    )


class TestLadder:
    def test_total_power_sets_base_rise(self):
        result = two_die_stack(logic_power=2.0).solve()
        assert result.temperatures[0] == pytest.approx(
            318.0 + 2.05 * 2.0, rel=1e-6)

    def test_upper_die_at_least_as_hot(self):
        result = two_die_stack().solve()
        assert result.temperatures[1] >= result.temperatures[0]

    def test_more_power_hotter(self):
        cool = two_die_stack(logic_power=1.0).solve()
        hot = two_die_stack(logic_power=6.0).solve()
        assert hot.hottest() > cool.hottest() + 5.0

    def test_better_heatsink_cooler(self):
        weak = two_die_stack(sink_resistance=4.0).solve()
        strong = two_die_stack(sink_resistance=0.5).solve()
        assert strong.hottest() < weak.hottest()

    def test_extra_powers_length_checked(self):
        with pytest.raises(ConfigurationError):
            two_die_stack().solve(extra_powers=[1.0])

    def test_layer_validation(self):
        with pytest.raises(ConfigurationError):
            ThermalLayer("bad", power=-1.0, area=1e-6)
        with pytest.raises(ConfigurationError):
            StackThermalModel(layers=())


class TestRefreshCoupling:
    @pytest.fixture()
    def coupling(self):
        return RefreshThermalCoupling(
            stack=two_die_stack(),
            memory_layer=1,
            refresh_model=TemperatureAdaptiveRefresh(
                base_retention=1e-3, base_temperature=300.0),
            rows=4096,
            row_energy=1.77e-12,
        )

    def test_fixed_point_converges(self, coupling):
        result, power = coupling.solve()
        assert result.iterations < 20
        assert power > 0

    def test_refresh_power_above_cold_value(self, coupling):
        """The stack runs above the 300 K calibration point, so the
        converged refresh power exceeds the cold 14.5 uW figure."""
        _result, power = coupling.solve()
        cold = coupling.refresh_power_at(300.0)
        assert power > 2 * cold

    def test_hotter_logic_more_refresh_power(self):
        def solve(logic_power):
            coupling = RefreshThermalCoupling(
                stack=two_die_stack(logic_power=logic_power),
                memory_layer=1,
                refresh_model=TemperatureAdaptiveRefresh(
                    base_retention=1e-3, base_temperature=300.0),
                rows=4096, row_energy=1.77e-12)
            return coupling.solve()[1]

        assert solve(6.0) > 1.5 * solve(1.0)

    def test_feedback_contributes_heat(self, coupling):
        """The converged temperature includes the refresh power itself."""
        no_feedback = coupling.stack.solve()
        result, power = coupling.solve()
        assert result.temperatures[1] >= no_feedback.temperatures[1]
        del power

    def test_runaway_detected(self):
        """An absurdly weak heatsink with a huge refresh load must be
        reported as thermal runaway, not iterated forever."""
        coupling = RefreshThermalCoupling(
            stack=two_die_stack(logic_power=40.0, sink_resistance=10.0),
            memory_layer=1,
            refresh_model=TemperatureAdaptiveRefresh(
                base_retention=1e-4, base_temperature=300.0,
                doubling_interval=5.0),
            rows=65536, row_energy=2e-12)
        with pytest.raises(ConfigurationError, match="runaway"):
            coupling.solve(max_iterations=30)

    def test_layer_index_validated(self, coupling):
        import dataclasses
        with pytest.raises(ConfigurationError):
            dataclasses.replace(coupling, memory_layer=5)
