"""Tests for the TSV model."""

import pytest

from repro.errors import ConfigurationError
from repro.stack3d import TsvModel
from repro.units import fF, um


class TestElectrical:
    def test_resistance_small(self):
        """A 10 um Cu column: well below an ohm."""
        assert TsvModel().resistance < 0.1

    def test_capacitance_tens_of_ff(self):
        assert 10 * fF < TsvModel().capacitance < 100 * fF

    def test_energy_quadratic_in_swing(self):
        tsv = TsvModel()
        assert tsv.energy_per_transition(1.2) == pytest.approx(
            4 * tsv.energy_per_transition(0.6))

    def test_narrower_via_more_resistive(self):
        thin = TsvModel(diameter=5 * um, pitch=20 * um)
        thick = TsvModel(diameter=10 * um)
        assert thin.resistance > thick.resistance


class TestDensity:
    def test_vias_scale_with_area(self):
        tsv = TsvModel()
        assert tsv.vias_per_area(4e-6) == 4 * tsv.vias_per_area(1e-6)

    def test_area_argument_validated(self):
        with pytest.raises(ConfigurationError):
            TsvModel().vias_per_area(0.0)

    def test_thousands_per_die(self):
        """The paper's bandwidth argument: TSVs spread across a die give
        thousands of connections (vs hundreds of pins)."""
        assert TsvModel().vias_per_area(25e-6) > 1000


class TestValidation:
    def test_pitch_below_diameter_rejected(self):
        with pytest.raises(ConfigurationError):
            TsvModel(diameter=20 * um, pitch=10 * um)

    def test_nonpositive_swing_rejected(self):
        with pytest.raises(ConfigurationError):
            TsvModel().energy_per_transition(0.0)
