"""Tests for storage capacitor models."""

import pytest

from repro.errors import ConfigurationError
from repro.tech import CapacitorKind, StorageCapacitor
from repro.units import fF, um2


class TestCmosGate:
    def test_paper_value(self, logic_node):
        cap = StorageCapacitor.cmos_gate(logic_node)
        assert cap.capacitance == pytest.approx(11 * fF)
        assert cap.kind is CapacitorKind.CMOS_GATE

    def test_area_sub_micron_squared(self, logic_node):
        cap = StorageCapacitor.cmos_gate(logic_node)
        assert 0.1 * um2 < cap.area < 2 * um2

    def test_dielectric_leak_scales_with_area(self, logic_node):
        small = StorageCapacitor.cmos_gate(logic_node, capacitance=5 * fF)
        big = StorageCapacitor.cmos_gate(logic_node, capacitance=20 * fF)
        assert big.dielectric_leakage == pytest.approx(
            4 * small.dielectric_leakage)


class TestDeepTrench:
    def test_paper_value(self, dram_node):
        cap = StorageCapacitor.deep_trench(dram_node)
        assert cap.capacitance == pytest.approx(30 * fF)
        assert cap.kind is CapacitorKind.DEEP_TRENCH

    def test_negligible_dielectric_leak(self, dram_node):
        cap = StorageCapacitor.deep_trench(dram_node)
        assert cap.dielectric_leakage < 1e-15

    def test_small_footprint(self, dram_node, logic_node):
        trench = StorageCapacitor.deep_trench(dram_node)
        planar = StorageCapacitor.cmos_gate(logic_node)
        # The trench goes down, not sideways.
        assert trench.area < 0.2 * planar.area


class TestMim:
    def test_area_follows_density(self):
        cap = StorageCapacitor.mim(capacitance=10 * fF, density=2 * fF / um2)
        assert cap.area == pytest.approx(5 * um2)

    def test_rejects_bad_density(self):
        with pytest.raises(ConfigurationError):
            StorageCapacitor.mim(capacitance=10 * fF, density=0.0)


class TestValidation:
    def test_stored_charge(self, dram_node):
        cap = StorageCapacitor.deep_trench(dram_node)
        assert cap.stored_charge(1.0) == pytest.approx(30e-15)

    def test_stored_charge_rejects_negative(self, dram_node):
        cap = StorageCapacitor.deep_trench(dram_node)
        with pytest.raises(ConfigurationError):
            cap.stored_charge(-0.5)

    def test_rejects_nonpositive_capacitance(self):
        with pytest.raises(ConfigurationError):
            StorageCapacitor(kind=CapacitorKind.MIM, capacitance=0.0,
                             area=1e-12, dielectric_leakage=0.0)
