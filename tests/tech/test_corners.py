"""Tests for process corners and temperature derating."""

import pytest

from repro.errors import ConfigurationError
from repro.tech import Corner, Mosfet, Polarity, VtFlavor, apply_corner
from repro.units import um


def drive(node):
    return Mosfet(node, Polarity.NMOS, VtFlavor.SVT, width=1 * um).on_current()


def leak(node):
    return Mosfet(node, Polarity.NMOS, VtFlavor.SVT, width=1 * um).off_current()


class TestCornerOrdering:
    def test_ff_faster_than_tt_faster_than_ss(self, logic_node):
        tt = drive(apply_corner(logic_node, Corner.TT))
        ff = drive(apply_corner(logic_node, Corner.FF))
        ss = drive(apply_corner(logic_node, Corner.SS))
        assert ff > tt > ss

    def test_ff_leaks_most(self, logic_node):
        tt = leak(apply_corner(logic_node, Corner.TT))
        ff = leak(apply_corner(logic_node, Corner.FF))
        ss = leak(apply_corner(logic_node, Corner.SS))
        assert ff > tt > ss

    def test_tt_is_identity_at_same_temperature(self, logic_node):
        tt = apply_corner(logic_node, Corner.TT)
        base = logic_node.params(Polarity.NMOS, VtFlavor.SVT)
        shifted = tt.params(Polarity.NMOS, VtFlavor.SVT)
        assert shifted.vth == pytest.approx(base.vth)
        assert shifted.k_sat == pytest.approx(base.k_sat)

    def test_skewed_corners_split_polarities(self, logic_node):
        fs = apply_corner(logic_node, Corner.FS)
        base_n = logic_node.params(Polarity.NMOS, VtFlavor.SVT).vth
        base_p = logic_node.params(Polarity.PMOS, VtFlavor.SVT).vth
        assert fs.params(Polarity.NMOS, VtFlavor.SVT).vth < base_n
        assert fs.params(Polarity.PMOS, VtFlavor.SVT).vth > base_p


class TestTemperature:
    def test_hot_device_is_slower(self, logic_node):
        hot = apply_corner(logic_node, Corner.TT, temperature=398.0)
        assert drive(hot) < drive(logic_node)

    def test_hot_device_leaks_more(self, logic_node):
        hot = apply_corner(logic_node, Corner.TT, temperature=398.0)
        assert leak(hot) > 10 * leak(logic_node)

    def test_junction_leak_doubles_every_10k(self, logic_node):
        hot = apply_corner(logic_node, Corner.TT, temperature=330.0)
        ratio = hot.junction_leak_per_width / logic_node.junction_leak_per_width
        assert ratio == pytest.approx(8.0, rel=0.01)

    def test_swing_scales_with_temperature(self, logic_node):
        hot = apply_corner(logic_node, Corner.TT, temperature=360.0)
        base = logic_node.params(Polarity.NMOS, VtFlavor.SVT)
        shifted = hot.params(Polarity.NMOS, VtFlavor.SVT)
        assert shifted.subthreshold_swing == pytest.approx(
            base.subthreshold_swing * 1.2, rel=0.01)

    def test_rejects_extreme_temperature(self, logic_node):
        with pytest.raises(ConfigurationError):
            apply_corner(logic_node, Corner.TT, temperature=500.0)
        with pytest.raises(ConfigurationError):
            apply_corner(logic_node, Corner.TT, temperature=100.0)

    def test_corner_name_recorded(self, logic_node):
        ss = apply_corner(logic_node, Corner.SS, temperature=398.0)
        assert "ss" in ss.name and "398" in ss.name
