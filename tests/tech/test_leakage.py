"""Tests for leakage mechanism helpers."""

import pytest

from repro.errors import ConfigurationError
from repro.tech import (
    Mosfet,
    Polarity,
    VtFlavor,
    gate_leakage,
    junction_leakage,
    stacked_leakage_factor,
    subthreshold_leakage,
)
from repro.tech.leakage import sram_cell_leakage
from repro.units import um


class TestSubthreshold:
    def test_matches_device_off_current(self, logic_node):
        device = Mosfet(logic_node, Polarity.NMOS, VtFlavor.SVT, width=1 * um)
        assert subthreshold_leakage(device) == pytest.approx(
            device.off_current())

    def test_hvt_below_svt(self, logic_node):
        svt = Mosfet(logic_node, Polarity.NMOS, VtFlavor.SVT, width=1 * um)
        hvt = Mosfet(logic_node, Polarity.NMOS, VtFlavor.HVT, width=1 * um)
        assert subthreshold_leakage(hvt) < subthreshold_leakage(svt)


class TestJunction:
    def test_scales_with_width(self, logic_node):
        assert junction_leakage(logic_node, 2 * um) == pytest.approx(
            2 * junction_leakage(logic_node, 1 * um))

    def test_rejects_nonpositive_width(self, logic_node):
        with pytest.raises(ConfigurationError):
            junction_leakage(logic_node, 0.0)


class TestStacking:
    def test_single_device_unity(self):
        assert stacked_leakage_factor(1) == 1.0

    def test_decade_per_extra_device(self):
        assert stacked_leakage_factor(2) == pytest.approx(0.1)
        assert stacked_leakage_factor(3) == pytest.approx(0.01)

    def test_rejects_empty_stack(self):
        with pytest.raises(ConfigurationError):
            stacked_leakage_factor(0)


class TestSramCell:
    def test_cell_leakage_order_of_magnitude(self, logic_node):
        """~3 off devices of ~0.24 um SVT: a few hundred pA at 300 K."""
        device = Mosfet(logic_node, Polarity.NMOS, VtFlavor.SVT,
                        width=0.24 * um)
        cell = sram_cell_leakage(logic_node, device)
        assert 1e-10 < cell < 3e-9

    def test_dominated_by_subthreshold(self, logic_node):
        device = Mosfet(logic_node, Polarity.NMOS, VtFlavor.SVT,
                        width=0.24 * um)
        cell = sram_cell_leakage(logic_node, device)
        sub = 3 * subthreshold_leakage(device)
        assert sub / cell > 0.9

    def test_gate_leakage_positive(self, logic_node):
        device = Mosfet(logic_node, Polarity.NMOS, VtFlavor.SVT, width=1 * um)
        assert gate_leakage(device) > 0
