"""Tests for repro.tech.node."""

import pytest

from repro.errors import ConfigurationError
from repro.tech import Polarity, TechnologyNode, TransistorParams, VtFlavor
from repro.units import nm, um


class TestTransistorParams:
    def test_valid_card(self):
        p = TransistorParams(vth=0.3, k_sat=5e2, alpha=1.3, i_off=1e-3,
                             subthreshold_swing=0.09, dibl=0.1,
                             body_effect=0.2)
        assert p.vth == 0.3

    def test_rejects_negative_vth(self):
        with pytest.raises(ConfigurationError):
            TransistorParams(vth=-0.1, k_sat=5e2, alpha=1.3, i_off=1e-3,
                             subthreshold_swing=0.09, dibl=0.1,
                             body_effect=0.2)

    def test_rejects_alpha_out_of_range(self):
        with pytest.raises(ConfigurationError):
            TransistorParams(vth=0.3, k_sat=5e2, alpha=2.5, i_off=1e-3,
                             subthreshold_swing=0.09, dibl=0.1,
                             body_effect=0.2)

    def test_rejects_subphysical_swing(self):
        with pytest.raises(ConfigurationError):
            TransistorParams(vth=0.3, k_sat=5e2, alpha=1.3, i_off=1e-3,
                             subthreshold_swing=0.03, dibl=0.1,
                             body_effect=0.2)


class TestLogicNode:
    def test_identity(self, logic_node):
        assert logic_node.feature_size == pytest.approx(90 * nm)
        assert logic_node.vdd == pytest.approx(1.2)
        assert not logic_node.allows_wordline_overdrive

    def test_has_all_six_devices(self, logic_node):
        for polarity in Polarity:
            for flavor in VtFlavor:
                assert logic_node.params(polarity, flavor).vth > 0

    def test_vth_ordering(self, logic_node):
        lvt = logic_node.params(Polarity.NMOS, VtFlavor.LVT).vth
        svt = logic_node.params(Polarity.NMOS, VtFlavor.SVT).vth
        hvt = logic_node.params(Polarity.NMOS, VtFlavor.HVT).vth
        assert lvt < svt < hvt

    def test_leakage_ordering_follows_vth(self, logic_node):
        lvt = logic_node.params(Polarity.NMOS, VtFlavor.LVT).i_off
        svt = logic_node.params(Polarity.NMOS, VtFlavor.SVT).i_off
        hvt = logic_node.params(Polarity.NMOS, VtFlavor.HVT).i_off
        assert lvt > svt > hvt

    def test_pmos_weaker_than_nmos(self, logic_node):
        n = logic_node.params(Polarity.NMOS, VtFlavor.SVT).k_sat
        p = logic_node.params(Polarity.PMOS, VtFlavor.SVT).k_sat
        assert p < n

    def test_thermal_voltage_room_temperature(self, logic_node):
        assert logic_node.thermal_voltage == pytest.approx(0.02585, rel=0.01)

    def test_width_units(self, logic_node):
        assert logic_node.width_units(6) == pytest.approx(6 * 120 * nm)

    def test_width_units_rejects_nonpositive(self, logic_node):
        with pytest.raises(ConfigurationError):
            logic_node.width_units(0)


class TestDramNode:
    def test_allows_overdrive(self, dram_node):
        assert dram_node.allows_wordline_overdrive
        assert dram_node.vdd_max == pytest.approx(1.7)

    def test_array_device_leaks_less(self, logic_node, dram_node):
        logic_hvt = logic_node.params(Polarity.NMOS, VtFlavor.HVT).i_off
        dram_hvt = dram_node.params(Polarity.NMOS, VtFlavor.HVT).i_off
        assert dram_hvt < logic_hvt

    def test_junction_leakage_engineered_down(self, logic_node, dram_node):
        assert (dram_node.junction_leak_per_width
                < logic_node.junction_leak_per_width)

    def test_dram_cell_area(self, dram_node):
        assert dram_node.dram_cell_area == pytest.approx(0.3 * um * um)


class TestScaling:
    def test_areas_shrink_quadratically(self, logic_node):
        scaled = logic_node.scaled(45 * nm)
        ratio = scaled.sram6t_cell_area / logic_node.sram6t_cell_area
        assert ratio == pytest.approx(0.25, rel=0.01)

    def test_leakage_grows_when_shrinking(self, logic_node):
        scaled = logic_node.scaled(45 * nm)
        assert (scaled.params(Polarity.NMOS, VtFlavor.SVT).i_off
                > logic_node.params(Polarity.NMOS, VtFlavor.SVT).i_off)

    def test_rejects_extreme_ratio(self, logic_node):
        with pytest.raises(ConfigurationError):
            logic_node.scaled(1 * nm)

    def test_rejects_nonpositive(self, logic_node):
        with pytest.raises(ConfigurationError):
            logic_node.scaled(0.0)


class TestValidation:
    def test_unknown_device_raises(self, logic_node):
        import dataclasses
        stripped = dataclasses.replace(
            logic_node,
            transistors={
                (Polarity.NMOS, VtFlavor.SVT):
                    logic_node.params(Polarity.NMOS, VtFlavor.SVT)
            },
        )
        with pytest.raises(ConfigurationError):
            stripped.params(Polarity.PMOS, VtFlavor.HVT)

    def test_inconsistent_supplies_rejected(self, logic_node):
        import dataclasses
        with pytest.raises(ConfigurationError):
            dataclasses.replace(logic_node, vdd=1.2, vdd_max=1.0)
