"""Tests for the analytic MOSFET model."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.tech import Mosfet, Polarity, VtFlavor
from repro.units import um


@pytest.fixture(scope="module")
def nmos_svt(logic_node):
    return Mosfet(logic_node, Polarity.NMOS, VtFlavor.SVT, width=1 * um)


class TestConstruction:
    def test_rejects_zero_width(self, logic_node):
        with pytest.raises(ConfigurationError):
            Mosfet(logic_node, Polarity.NMOS, VtFlavor.SVT, width=0.0)

    def test_rejects_sub_minimum_length(self, logic_node):
        with pytest.raises(ConfigurationError):
            Mosfet(logic_node, Polarity.NMOS, VtFlavor.SVT, width=1 * um,
                   length_factor=0.5)


class TestCurrents:
    def test_on_current_in_lp_band(self, nmos_svt):
        # 90 nm LP NMOS: a few hundred uA/um.
        ion = nmos_svt.on_current() / 1e-6
        assert 300 < ion < 800

    def test_off_current_matches_card(self, nmos_svt):
        assert nmos_svt.off_current() == pytest.approx(
            nmos_svt.params.i_off * nmos_svt.width, rel=0.05)

    def test_monotonic_in_vgs(self, nmos_svt):
        currents = [nmos_svt.drain_current(v, 1.2)
                    for v in np.linspace(0, 1.2, 50)]
        assert all(b >= a for a, b in zip(currents, currents[1:]))

    def test_monotonic_in_vds(self, nmos_svt):
        currents = [nmos_svt.drain_current(1.2, v)
                    for v in np.linspace(0, 1.2, 50)]
        assert all(b >= a - 1e-15 for a, b in zip(currents, currents[1:]))

    def test_continuous_around_threshold(self, nmos_svt):
        """No jump where subthreshold hands over to strong inversion.

        Fine 1 mV steps across the transition: adjacent samples must
        never jump by more than the steepest physical slope allows.
        """
        vth = nmos_svt.effective_vth(vds=0.6)
        grid = np.arange(vth - 0.05, vth + 0.05, 0.001)
        currents = [nmos_svt.drain_current(v, 0.6) for v in grid]
        ratios = [b / a for a, b in zip(currents, currents[1:])]
        assert max(ratios) < 1.5

    def test_scales_linearly_with_width(self, logic_node):
        narrow = Mosfet(logic_node, Polarity.NMOS, VtFlavor.SVT,
                        width=0.5 * um)
        wide = Mosfet(logic_node, Polarity.NMOS, VtFlavor.SVT, width=2 * um)
        assert wide.on_current() == pytest.approx(
            4 * narrow.on_current(), rel=0.01)

    def test_longer_channel_weaker_drive(self, logic_node):
        short = Mosfet(logic_node, Polarity.NMOS, VtFlavor.SVT, width=1 * um)
        long = Mosfet(logic_node, Polarity.NMOS, VtFlavor.SVT, width=1 * um,
                      length_factor=2.0)
        assert long.on_current() < short.on_current()

    def test_negative_vgs_gives_negligible_current(self, nmos_svt):
        assert nmos_svt.drain_current(-0.3, 1.0) < 1e-12

    def test_rejects_negative_vds(self, nmos_svt):
        with pytest.raises(ConfigurationError):
            nmos_svt.drain_current(1.0, -0.1)

    def test_subthreshold_decade_per_swing(self, nmos_svt):
        swing = nmos_svt.params.subthreshold_swing
        i1 = nmos_svt.drain_current(0.10, 1.2)
        i2 = nmos_svt.drain_current(0.10 + swing, 1.2)
        assert i2 / i1 == pytest.approx(10.0, rel=0.05)

    def test_dibl_raises_leakage_with_vds(self, nmos_svt):
        assert nmos_svt.off_current(1.2) > nmos_svt.off_current(0.4)

    def test_linear_region_below_saturation(self, nmos_svt):
        shallow = nmos_svt.drain_current(1.2, 0.05)
        deep = nmos_svt.drain_current(1.2, 1.2)
        assert shallow < 0.3 * deep


class TestVthModifiers:
    def test_dibl_lowers_vth(self, nmos_svt):
        assert (nmos_svt.effective_vth(vds=1.2)
                < nmos_svt.effective_vth(vds=0.0))

    def test_body_effect_raises_vth(self, nmos_svt):
        assert (nmos_svt.effective_vth(vds=0.0, vsb=0.5)
                > nmos_svt.effective_vth(vds=0.0, vsb=0.0))

    def test_vth_floor(self, nmos_svt):
        # Even silly biases never yield a depletion-mode device.
        assert nmos_svt.effective_vth(vds=100.0) >= 0.05


class TestCapacitances:
    def test_gate_cap_matches_constant(self, nmos_svt):
        expected = nmos_svt.node.gate_cap_per_width * 1 * um
        assert nmos_svt.gate_capacitance() == pytest.approx(expected)

    def test_gate_cap_grows_with_length(self, logic_node):
        short = Mosfet(logic_node, Polarity.NMOS, VtFlavor.SVT, width=1 * um)
        long = Mosfet(logic_node, Polarity.NMOS, VtFlavor.SVT, width=1 * um,
                      length_factor=1.5)
        assert long.gate_capacitance() == pytest.approx(
            1.5 * short.gate_capacitance())

    def test_junction_cap_positive(self, nmos_svt):
        assert nmos_svt.junction_capacitance() > 0


class TestHelpers:
    def test_on_resistance_sane(self, nmos_svt):
        # ~1 kohm/um at LP 90 nm.
        assert 300 < nmos_svt.on_resistance() < 3000

    def test_scaled_width(self, nmos_svt):
        doubled = nmos_svt.scaled(2.0)
        assert doubled.width == pytest.approx(2 * um)
        assert doubled.on_resistance() == pytest.approx(
            nmos_svt.on_resistance() / 2, rel=0.01)

    def test_scaled_rejects_nonpositive(self, nmos_svt):
        with pytest.raises(ConfigurationError):
            nmos_svt.scaled(0.0)

    def test_gate_leakage_scales_with_area(self, logic_node):
        small = Mosfet(logic_node, Polarity.NMOS, VtFlavor.SVT, width=1 * um)
        big = Mosfet(logic_node, Polarity.NMOS, VtFlavor.SVT, width=3 * um)
        assert big.gate_leakage() == pytest.approx(3 * small.gate_leakage())


class TestPmos:
    def test_pmos_weaker(self, logic_node):
        n = Mosfet(logic_node, Polarity.NMOS, VtFlavor.SVT, width=1 * um)
        p = Mosfet(logic_node, Polarity.PMOS, VtFlavor.SVT, width=1 * um)
        assert p.on_current() < n.on_current()

    def test_pmos_still_monotone(self, logic_node):
        p = Mosfet(logic_node, Polarity.PMOS, VtFlavor.SVT, width=1 * um)
        currents = [p.drain_current(v, 1.2) for v in np.linspace(0, 1.2, 30)]
        assert all(b >= a for a, b in zip(currents, currents[1:]))
