"""Tests for interconnect RC models."""

import pytest

from repro.errors import ConfigurationError
from repro.tech.wire import (
    GLOBAL_LAYER,
    INTERMEDIATE_LAYER,
    LOCAL_LAYER,
    Wire,
    WireLayer,
    optimal_repeater_count,
    repeater_stage_delay,
)
from repro.units import fF, mm, ohm, um


class TestWireLayer:
    def test_stack_resistance_ordering(self):
        # Thicker upper metals are less resistive.
        assert (LOCAL_LAYER.resistance_per_length
                > INTERMEDIATE_LAYER.resistance_per_length
                > GLOBAL_LAYER.resistance_per_length)

    def test_rejects_nonpositive(self):
        with pytest.raises(ConfigurationError):
            WireLayer("bad", resistance_per_length=0.0,
                      capacitance_per_length=1.0)


class TestWire:
    def test_rc_proportional_to_length(self):
        short = Wire(LOCAL_LAYER, 10 * um)
        long = Wire(LOCAL_LAYER, 20 * um)
        assert long.resistance == pytest.approx(2 * short.resistance)
        assert long.capacitance == pytest.approx(2 * short.capacitance)

    def test_zero_length_allowed(self):
        wire = Wire(LOCAL_LAYER, 0.0)
        assert wire.capacitance == 0.0

    def test_negative_length_rejected(self):
        with pytest.raises(ConfigurationError):
            Wire(LOCAL_LAYER, -1 * um)

    def test_elmore_reduces_to_lumped_rc(self):
        """With negligible wire R the delay is 0.69 * Rdrv * Ctotal."""
        wire = Wire(GLOBAL_LAYER, 1 * um)
        delay = wire.elmore_delay(driver_resistance=1e3,
                                  load_capacitance=100 * fF)
        lumped = 0.69 * 1e3 * (wire.capacitance + 100 * fF)
        assert delay == pytest.approx(lumped, rel=0.01)

    def test_elmore_monotone_in_length(self):
        delays = [Wire(LOCAL_LAYER, l * um).elmore_delay(1e3, 1 * fF)
                  for l in (10, 50, 100, 500)]
        assert all(b > a for a, b in zip(delays, delays[1:]))

    def test_elmore_rejects_negative_driver(self):
        with pytest.raises(ConfigurationError):
            Wire(LOCAL_LAYER, 1 * um).elmore_delay(-1.0)

    def test_full_swing_energy_is_cv2(self):
        wire = Wire(INTERMEDIATE_LAYER, 100 * um)
        assert wire.energy(swing=1.2) == pytest.approx(
            wire.capacitance * 1.2 ** 2)

    def test_low_swing_energy_linear_in_swing(self):
        """The GBL trick: 0.1 V swing off a 0.4 V rail costs C*0.1*0.4."""
        wire = Wire(INTERMEDIATE_LAYER, 100 * um)
        low = wire.energy(swing=0.1, supply=0.4)
        full = wire.energy(swing=1.2)
        assert low == pytest.approx(wire.capacitance * 0.1 * 0.4)
        assert full / low == pytest.approx(36.0, rel=0.01)

    def test_energy_rejects_negative_swing(self):
        with pytest.raises(ConfigurationError):
            Wire(LOCAL_LAYER, 1 * um).energy(-0.5)


class TestRepeaters:
    def test_short_wire_needs_no_repeater(self):
        wire = Wire(GLOBAL_LAYER, 10 * um)
        assert optimal_repeater_count(wire, 1e3, 2 * fF) == 1

    def test_long_wire_wants_repeaters(self):
        wire = Wire(LOCAL_LAYER, 5 * mm)
        assert optimal_repeater_count(wire, 1e3, 2 * fF) > 1

    def test_repeated_beats_unrepeated_on_long_wire(self):
        wire = Wire(LOCAL_LAYER, 5 * mm)
        repeated = repeater_stage_delay(wire, 1e3, 2 * fF)
        direct = wire.elmore_delay(1e3)
        assert repeated < direct

    def test_repeater_count_rejects_bad_driver(self):
        wire = Wire(LOCAL_LAYER, 1 * mm)
        with pytest.raises(ConfigurationError):
            optimal_repeater_count(wire, 0.0, 2 * fF)
