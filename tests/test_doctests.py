"""Run the doctests embedded in module docstrings.

The examples in docstrings are part of the public documentation; this
test keeps them executable so they cannot rot.
"""

import doctest

import pytest

import repro.core.report
import repro.spice.netlist
import repro.units

MODULES = [repro.units, repro.spice.netlist, repro.core.report]


@pytest.mark.parametrize("module", MODULES,
                         ids=[m.__name__ for m in MODULES])
def test_module_doctests(module):
    results = doctest.testmod(module, verbose=False)
    assert results.failed == 0, f"{results.failed} doctest(s) failed"
    assert results.attempted > 0, "module has no doctests to run"
