"""Run the doctests embedded in module docstrings.

The examples in docstrings are part of the public documentation; this
test keeps them executable so they cannot rot.
"""

import doctest
import importlib

import pytest

import repro.core.report
import repro.refresh.simulator
import repro.spice.netlist
import repro.units

# repro.obs exposes a `metrics()` accessor that shadows the submodule
# attribute, so resolve the module itself through importlib.
_obs_metrics = importlib.import_module("repro.obs.metrics")

MODULES = [repro.units, repro.spice.netlist, repro.core.report,
           repro.refresh.simulator, _obs_metrics]


@pytest.mark.parametrize("module", MODULES,
                         ids=[m.__name__ for m in MODULES])
def test_module_doctests(module):
    results = doctest.testmod(module, verbose=False)
    assert results.failed == 0, f"{results.failed} doctest(s) failed"
    assert results.attempted > 0, "module has no doctests to run"
