"""Tests for repro.units."""

import math

import pytest

from repro import units
from repro.units import clamp, db, parallel, si_format


class TestMultipliers:
    def test_time_chain(self):
        assert units.ms == 1e3 * units.us == 1e6 * units.ns == 1e9 * units.ps

    def test_capacitance_chain(self):
        assert units.pF == 1e3 * units.fF
        assert 11 * units.fF == pytest.approx(11e-15)

    def test_energy_power_consistency(self):
        # 1 pJ per ns is 1 mW.
        assert (1 * units.pJ) / (1 * units.ns) == pytest.approx(1 * units.mW)

    def test_memory_sizes(self):
        assert units.Mb == 1024 * units.kb
        assert 128 * units.kb == 131072


class TestSiFormat:
    def test_nanoseconds(self):
        assert si_format(1.3e-9, "s") == "1.3 ns"

    def test_zero(self):
        assert si_format(0.0, "F") == "0 F"

    def test_no_unit(self):
        assert si_format(2.5e3) == "2.5 k"

    def test_negative(self):
        assert si_format(-4.7e-12, "J") == "-4.7 pJ"

    def test_large(self):
        assert si_format(3.2e9, "Hz") == "3.2 GHz"

    def test_sub_atto_clamps_to_smallest_prefix(self):
        text = si_format(1e-20, "F")
        assert "aF" in text


class TestDb:
    def test_10x_is_10db(self):
        assert db(10.0) == pytest.approx(10.0)

    def test_unity_is_zero(self):
        assert db(1.0) == pytest.approx(0.0)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            db(0.0)
        with pytest.raises(ValueError):
            db(-3.0)


class TestParallel:
    def test_two_equal(self):
        assert parallel(2.0, 2.0) == pytest.approx(1.0)

    def test_single_value(self):
        assert parallel(7.0) == pytest.approx(7.0)

    def test_three_values(self):
        assert parallel(3.0, 3.0, 3.0) == pytest.approx(1.0)

    def test_dominated_by_smallest(self):
        assert parallel(1.0, 1e9) == pytest.approx(1.0, rel=1e-6)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            parallel()

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            parallel(1.0, 0.0)


class TestClamp:
    def test_inside(self):
        assert clamp(0.5, 0.0, 1.0) == 0.5

    def test_below(self):
        assert clamp(-1.0, 0.0, 1.0) == 0.0

    def test_above(self):
        assert clamp(2.0, 0.0, 1.0) == 1.0

    def test_rejects_inverted_bounds(self):
        with pytest.raises(ValueError):
            clamp(0.5, 1.0, 0.0)
