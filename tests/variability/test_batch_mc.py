"""Monte-Carlo ``batch`` wiring: identity, checkpoints, progress.

The engine contract is that ``batch`` (like ``jobs``) is a pure
throughput knob: every combination of the two produces bit-identical
sample vectors, resumes the same checkpoints, and reports progress in
*samples*.  The workload is a deliberately tiny transistor-level
local-block column (2 cells, 50 steps) so the full matrix of
combinations stays fast.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import obs
from repro.cells.dram1t1c import Dram1t1cCell
from repro.checkpoint import Checkpoint, RunBudget
from repro.errors import ConfigurationError
from repro.obs.progress import BatchSampleProgress
from repro.units import ns, ps
from repro.variability.localblock_mc import LocalBlockMcModel
from repro.variability.montecarlo import (run_monte_carlo,
                                          run_monte_carlo_resumable)


def tiny_model() -> LocalBlockMcModel:
    return LocalBlockMcModel(Dram1t1cCell.scratchpad(), cells_per_lbl=2,
                             t_stop=0.05 * ns, dt=1.0 * ps)


class _Killed(BaseException):
    """Simulated kill; BaseException so no handler can swallow it."""


class _KillAfterSaves(Checkpoint):
    """Checkpoint that dies right *after* its n-th successful save —
    the poweroff-at-checkpoint-boundary scenario, deterministically."""

    def __init__(self, path, fingerprint, saves: int) -> None:
        super().__init__(path, fingerprint)
        self._remaining = saves

    def save(self, state) -> None:
        super().save(state)
        self._remaining -= 1
        if self._remaining == 0:
            raise _Killed


class _RecordingProgress:
    """Stands in for SweepProgress; records sample-level accounting."""

    def __init__(self) -> None:
        self.restored = 0
        self.completed = 0
        self.failed = 0

    def note_restored(self, count: int) -> None:
        self.restored += count

    def advance(self, completed: int = 0, failed: int = 0) -> None:
        self.completed += completed
        self.failed += failed


class TestBatchIdentity:
    def test_batch_matches_serial(self):
        model = tiny_model()
        serial = run_monte_carlo(model, 6, seed=3, batch=1)
        for batch in (2, 3, 6, 8):
            batched = run_monte_carlo(model, 6, seed=3, batch=batch)
            np.testing.assert_array_equal(batched.samples, serial.samples)

    def test_resumable_batch_matches_serial(self):
        model = tiny_model()
        serial = run_monte_carlo_resumable(model, 5, seed=9)
        batched = run_monte_carlo_resumable(model, 5, seed=9, batch=2)
        assert batched.complete
        np.testing.assert_array_equal(batched.result.samples,
                                      serial.result.samples)

    def test_batch_composes_with_jobs_and_counts_samples(self):
        model = tiny_model()
        serial = run_monte_carlo(model, 6, seed=3, batch=1)
        progress = _RecordingProgress()
        outcome = run_monte_carlo_resumable(model, 6, seed=3, jobs=2,
                                            batch=3, progress=progress)
        assert outcome.complete
        np.testing.assert_array_equal(outcome.result.samples,
                                      serial.samples)
        # The progress line advanced once per *sample*, not per chunk.
        assert progress.completed == 6
        assert progress.failed == 0


class TestBatchFallbackAndValidation:
    def test_plain_callable_falls_back_observably(self):
        model = lambda rng: float(rng.normal())  # noqa: E731
        with obs.instrumented() as registry:
            batched = run_monte_carlo(model, 8, seed=5, batch=4)
        assert registry.counter("mc.batch.fallback").value == 1
        serial = run_monte_carlo(model, 8, seed=5)
        np.testing.assert_array_equal(batched.samples, serial.samples)

    def test_batch_zero_rejected(self):
        with pytest.raises(ConfigurationError):
            run_monte_carlo(tiny_model(), 4, batch=0)
        with pytest.raises(ConfigurationError):
            run_monte_carlo_resumable(tiny_model(), 4, batch=0)


class TestCheckpointCompat:
    """A ``--batch`` run's checkpoints are byte-compatible with every
    other (jobs, batch) combination — the ISSUE's resume guarantee."""

    def test_killed_batch_run_resumes_on_scalar_path(self, tmp_path):
        model = tiny_model()
        ckpt = _KillAfterSaves(tmp_path / "mc.json", "fp", saves=1)
        with pytest.raises(_Killed):
            run_monte_carlo_resumable(model, 6, seed=4, batch=2,
                                      checkpoint=ckpt, save_every=2)
        saved = Checkpoint(tmp_path / "mc.json", "fp").load()
        assert 0 < saved["next"] < 6  # genuinely partial
        resumed = run_monte_carlo_resumable(
            model, 6, seed=4, checkpoint=Checkpoint(tmp_path / "mc.json",
                                                    "fp"))
        assert resumed.complete
        straight = run_monte_carlo(model, 6, seed=4)
        np.testing.assert_array_equal(resumed.result.samples,
                                      straight.samples)

    def test_killed_scalar_run_resumes_on_batched_path(self, tmp_path):
        model = tiny_model()
        ckpt = _KillAfterSaves(tmp_path / "mc.json", "fp", saves=3)
        with pytest.raises(_Killed):
            run_monte_carlo_resumable(model, 6, seed=4, checkpoint=ckpt,
                                      save_every=1)
        saved = Checkpoint(tmp_path / "mc.json", "fp").load()
        assert saved["next"] == 3  # resume lands mid-batch-grid
        resumed = run_monte_carlo_resumable(
            model, 6, seed=4, batch=4,
            checkpoint=Checkpoint(tmp_path / "mc.json", "fp"))
        assert resumed.complete
        straight = run_monte_carlo(model, 6, seed=4)
        np.testing.assert_array_equal(resumed.result.samples,
                                      straight.samples)

    def test_budget_stops_between_batches(self):
        outcome = run_monte_carlo_resumable(
            tiny_model(), 6, seed=1, batch=2,
            budget=RunBudget(max_seconds=0.0))
        assert outcome.exhausted == "max_seconds"
        assert outcome.completed == 0


class TestBatchSampleProgress:
    def test_item_advances_scale_to_samples(self):
        inner = _RecordingProgress()
        progress = BatchSampleProgress(inner, [3, 3, 2])
        progress.advance(completed=1)
        progress.advance(completed=1)
        assert inner.completed == 6
        progress.advance(failed=1)  # whole last chunk fails
        assert inner.failed == 2
        assert inner.completed == 6

    def test_note_restored_counts_samples(self):
        inner = _RecordingProgress()
        progress = BatchSampleProgress(inner, [4, 4, 1])
        progress.note_restored(2)
        assert inner.restored == 8
        progress.advance(completed=1)  # the remaining 1-sample chunk
        assert inner.completed == 1
