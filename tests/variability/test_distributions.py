"""Tests for distribution specs."""

import math

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.variability import GaussianSpec, LognormalSpec


class TestGaussian:
    def test_sample_statistics(self, rng):
        spec = GaussianSpec(mean=2.0, sigma=0.5)
        samples = spec.sample(rng, 20000)
        assert np.mean(samples) == pytest.approx(2.0, abs=0.02)
        assert np.std(samples) == pytest.approx(0.5, abs=0.02)

    def test_quantile_at_sigma(self):
        spec = GaussianSpec(mean=1.0, sigma=0.1)
        assert spec.quantile_at_sigma(6.0) == pytest.approx(1.6)
        assert spec.quantile_at_sigma(-6.0) == pytest.approx(0.4)

    def test_zero_sigma_degenerate(self, rng):
        spec = GaussianSpec(mean=3.0, sigma=0.0)
        assert float(spec.sample(rng)) == 3.0

    def test_rejects_negative_sigma(self):
        with pytest.raises(ConfigurationError):
            GaussianSpec(mean=0.0, sigma=-1.0)


class TestLognormal:
    def test_median_preserved(self, rng):
        spec = LognormalSpec(median=1e-12, sigma_ln=0.8)
        samples = spec.sample(rng, 20000)
        assert np.median(samples) == pytest.approx(1e-12, rel=0.05)

    def test_quantiles_symmetric_in_log(self):
        spec = LognormalSpec(median=1.0, sigma_ln=0.5)
        high = spec.quantile_at_sigma(2.0)
        low = spec.quantile_at_sigma(-2.0)
        assert high * low == pytest.approx(1.0, rel=1e-9)

    def test_mean_above_median(self):
        spec = LognormalSpec(median=1.0, sigma_ln=1.0)
        assert spec.mean() == pytest.approx(math.exp(0.5), rel=1e-9)

    def test_all_samples_positive(self, rng):
        spec = LognormalSpec(median=1e-15, sigma_ln=1.5)
        assert np.all(spec.sample(rng, 5000) > 0)

    def test_rejects_nonpositive_median(self):
        with pytest.raises(ConfigurationError):
            LognormalSpec(median=0.0, sigma_ln=0.5)
