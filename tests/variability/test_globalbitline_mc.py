"""GlobalBitlineMcModel: the sparse-backend Monte-Carlo workload.

The acceptance contract is end-to-end: the default model sits above
``SPARSE_AUTO_THRESHOLD`` so ``auto`` picks sparse; serial, ``batch``
and ``jobs`` runs are bit-identical (the batched solver ejects whole
sparse stacks to scalar-sparse); checkpoints written by a killed run
resume to the uninterrupted result; the model pickles for process
pools.
"""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro import obs
from repro.cells.dram1t1c import Dram1t1cCell
from repro.checkpoint import Checkpoint
from repro.exec import SupervisionPolicy
from repro.spice.mna import MnaSystem
from repro.spice.stampplan import SPARSE_AUTO_THRESHOLD
from repro.units import ns, ps
from repro.variability.globalbitline_mc import GlobalBitlineMcModel
from repro.variability.montecarlo import (run_monte_carlo,
                                          run_monte_carlo_resumable)


def sparse_model() -> GlobalBitlineMcModel:
    """Smallest hierarchy that still clears the sparse threshold."""
    return GlobalBitlineMcModel(Dram1t1cCell.scratchpad(), blocks=8,
                                cells_per_lbl=14, t_stop=0.02 * ns,
                                dt=2.0 * ps)


class _Killed(BaseException):
    """Simulated kill; BaseException so no handler can swallow it."""


class _KillAfterSaves(Checkpoint):
    def __init__(self, path, fingerprint, saves: int) -> None:
        super().__init__(path, fingerprint)
        self._remaining = saves

    def save(self, state) -> None:
        super().save(state)
        self._remaining -= 1
        if self._remaining == 0:
            raise _Killed


class TestModelShape:
    def test_default_model_is_above_sparse_threshold(self):
        model = GlobalBitlineMcModel(Dram1t1cCell.scratchpad())
        assert MnaSystem(model._template()).size >= SPARSE_AUTO_THRESHOLD

    def test_draw_is_fixed_order_and_seed_stable(self):
        model = sparse_model()
        a = model.draw(np.random.default_rng(3))
        b = model.draw(np.random.default_rng(3))
        assert a == b
        assert len(a.vth_shifts) == model._n_mosfets

    def test_model_pickles_after_template_built(self):
        model = sparse_model()
        model._template()  # warm the unpicklable cache
        clone = pickle.loads(pickle.dumps(model))
        a = model.draw(np.random.default_rng(5))
        b = clone.draw(np.random.default_rng(5))
        assert a == b


class TestSparseExecution:
    def test_auto_resolves_sparse_and_batch_ejects_to_scalar_sparse(self):
        model = sparse_model()
        with obs.instrumented() as registry:
            run_monte_carlo(model, count=2, seed=9, batch=2)
            counters = registry.snapshot()["counters"]
        # The whole stack ejected (sparse solves per sample) ...
        assert counters["spice.batch.fallback"] == 2
        # ... and each scalar sample really ran the sparse kernel.
        assert counters["spice.sparse.auto.sparse"] == 2
        assert counters["spice.sparse.refactor"] > 0
        assert counters.get("spice.sparse.auto.dense", 0) == 0

    def test_serial_batch_jobs_bit_identical(self):
        model = sparse_model()
        serial = run_monte_carlo(model, count=4, seed=17)
        batched = run_monte_carlo(model, count=4, seed=17, batch=4)
        pooled = run_monte_carlo(model, count=4, seed=17, jobs=2)
        np.testing.assert_array_equal(serial.samples, batched.samples)
        np.testing.assert_array_equal(serial.samples, pooled.samples)

    def test_supervised_run_completes(self):
        model = sparse_model()
        policy = SupervisionPolicy(max_sample_seconds=30.0)
        outcome = run_monte_carlo_resumable(model, count=2, seed=21,
                                            policy=policy)
        assert outcome.complete
        assert outcome.result.samples.shape == (2,)


class TestKillResume:
    def test_killed_run_resumes_bit_identically(self, tmp_path):
        """The chaos-kill scenario on the sparse workload: die after
        the first checkpoint save, resume, match the straight run."""
        model = sparse_model()
        ckpt = _KillAfterSaves(tmp_path / "mc.json", "fp", saves=1)
        with pytest.raises(_Killed):
            run_monte_carlo_resumable(model, 4, seed=6, checkpoint=ckpt,
                                      save_every=1)
        saved = Checkpoint(tmp_path / "mc.json", "fp").load()
        assert 0 < saved["next"] < 4  # genuinely partial
        resumed = run_monte_carlo_resumable(
            model, 4, seed=6,
            checkpoint=Checkpoint(tmp_path / "mc.json", "fp"))
        assert resumed.complete
        straight = run_monte_carlo(model, 4, seed=6)
        np.testing.assert_array_equal(resumed.result.samples,
                                      straight.samples)
