"""Tests for the Monte-Carlo engine and worst-case estimators."""

import math

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.variability import (
    MonteCarloResult,
    empirical_quantile,
    run_monte_carlo,
    worst_case_gaussian,
    worst_case_lognormal,
)


class TestEngine:
    def test_reproducible_with_seed(self):
        model = lambda rng: float(rng.normal(0.0, 1.0))
        a = run_monte_carlo(model, count=50, seed=7)
        b = run_monte_carlo(model, count=50, seed=7)
        assert np.array_equal(a.samples, b.samples)

    def test_different_seeds_differ(self):
        model = lambda rng: float(rng.normal(0.0, 1.0))
        a = run_monte_carlo(model, count=50, seed=7)
        b = run_monte_carlo(model, count=50, seed=8)
        assert not np.array_equal(a.samples, b.samples)

    def test_streams_independent(self):
        """Each evaluation gets its own stream: samples are not equal."""
        model = lambda rng: float(rng.normal(0.0, 1.0))
        result = run_monte_carlo(model, count=100, seed=0)
        assert len(np.unique(result.samples)) == 100

    def test_rejects_tiny_count(self):
        with pytest.raises(ConfigurationError):
            run_monte_carlo(lambda rng: 0.0, count=1)

    def test_statistics(self):
        result = MonteCarloResult(samples=np.array([1.0, 2.0, 3.0]))
        assert result.mean == pytest.approx(2.0)
        assert result.median == pytest.approx(2.0)
        assert result.std == pytest.approx(1.0)


class TestWorstCase:
    def test_gaussian_low_tail(self):
        result = MonteCarloResult(samples=np.array([9.0, 10.0, 11.0]))
        assert worst_case_gaussian(result, 3.0, "low") == pytest.approx(7.0)

    def test_gaussian_high_tail(self):
        result = MonteCarloResult(samples=np.array([9.0, 10.0, 11.0]))
        assert worst_case_gaussian(result, 3.0, "high") == pytest.approx(13.0)

    def test_lognormal_matches_known_distribution(self):
        rng = np.random.default_rng(0)
        samples = rng.lognormal(mean=math.log(1e-3), sigma=0.5, size=50000)
        result = MonteCarloResult(samples=samples)
        worst = worst_case_lognormal(result, 6.0, "low")
        expected = math.exp(math.log(1e-3) - 6 * 0.5)
        assert worst == pytest.approx(expected, rel=0.1)

    def test_lognormal_always_positive(self):
        """The reason for the lognormal fit: a Gaussian 6-sigma would go
        negative on a heavy-tailed positive quantity."""
        rng = np.random.default_rng(1)
        samples = rng.lognormal(mean=0.0, sigma=1.0, size=5000)
        result = MonteCarloResult(samples=samples)
        assert worst_case_lognormal(result, 6.0, "low") > 0
        assert worst_case_gaussian(result, 6.0, "low") < 0

    def test_lognormal_requires_positive_samples(self):
        result = MonteCarloResult(samples=np.array([1.0, -1.0, 2.0]))
        with pytest.raises(ConfigurationError):
            worst_case_lognormal(result, 6.0)

    def test_bad_tail_rejected(self):
        result = MonteCarloResult(samples=np.array([1.0, 2.0]))
        with pytest.raises(ConfigurationError):
            worst_case_gaussian(result, 3.0, tail="middle")


class TestQuantile:
    def test_median(self):
        result = MonteCarloResult(samples=np.arange(101, dtype=float))
        assert empirical_quantile(result, 0.5) == pytest.approx(50.0)

    def test_bounds_checked(self):
        result = MonteCarloResult(samples=np.array([1.0, 2.0]))
        with pytest.raises(ConfigurationError):
            empirical_quantile(result, 1.5)
