"""Tests for Pelgrom mismatch scaling."""

import math

import pytest

from repro.errors import ConfigurationError
from repro.tech import Mosfet, Polarity, VtFlavor
from repro.units import mV, um
from repro.variability import PelgromModel, vth_sigma


class TestVthSigma:
    def test_area_scaling(self, logic_node):
        small = Mosfet(logic_node, Polarity.NMOS, VtFlavor.SVT,
                       width=0.12 * um)
        large = Mosfet(logic_node, Polarity.NMOS, VtFlavor.SVT,
                       width=0.48 * um)
        # 4x the area -> half the sigma.
        assert vth_sigma(small) == pytest.approx(2 * vth_sigma(large))

    def test_longer_channel_less_mismatch(self, logic_node):
        short = Mosfet(logic_node, Polarity.NMOS, VtFlavor.SVT,
                       width=0.24 * um)
        long = Mosfet(logic_node, Polarity.NMOS, VtFlavor.SVT,
                      width=0.24 * um, length_factor=4.0)
        assert vth_sigma(long) == pytest.approx(vth_sigma(short) / 2)

    def test_magnitude_minimum_device(self, logic_node):
        """A near-minimum device at 90 nm: tens of millivolts."""
        device = Mosfet(logic_node, Polarity.NMOS, VtFlavor.SVT,
                        width=0.12 * um)
        assert 20 * mV < vth_sigma(device) < 60 * mV

    def test_rejects_bad_avt(self, logic_node):
        device = Mosfet(logic_node, Polarity.NMOS, VtFlavor.SVT,
                        width=1 * um)
        with pytest.raises(ConfigurationError):
            vth_sigma(device, avt=0.0)


class TestPelgromModel:
    def test_spec_zero_mean(self, logic_node):
        device = Mosfet(logic_node, Polarity.NMOS, VtFlavor.SVT,
                        width=1 * um)
        spec = PelgromModel().vth_spec(device)
        assert spec.mean == 0.0
        assert spec.sigma == pytest.approx(vth_sigma(device))

    def test_sample_count(self, logic_node, rng):
        device = Mosfet(logic_node, Polarity.NMOS, VtFlavor.SVT,
                        width=1 * um)
        shifts = PelgromModel().sample_vth_shifts(device, rng, 100)
        assert len(shifts) == 100

    def test_sample_rejects_zero_count(self, logic_node, rng):
        device = Mosfet(logic_node, Polarity.NMOS, VtFlavor.SVT,
                        width=1 * um)
        with pytest.raises(ConfigurationError):
            PelgromModel().sample_vth_shifts(device, rng, 0)

    def test_beta_sigma_scales_with_area(self, logic_node):
        model = PelgromModel()
        small = Mosfet(logic_node, Polarity.NMOS, VtFlavor.SVT,
                       width=0.12 * um)
        large = Mosfet(logic_node, Polarity.NMOS, VtFlavor.SVT,
                       width=1.2 * um)
        assert model.beta_sigma(small) == pytest.approx(
            model.beta_sigma(large) * math.sqrt(10.0))
