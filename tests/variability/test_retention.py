"""Tests for the retention-time model — the paper's Sec. III methodology."""

import dataclasses

import pytest

from repro.errors import ConfigurationError
from repro.units import us


class TestLeakageBudget:
    def test_scratchpad_dominated_by_subthreshold(self, scratchpad_cell):
        model = scratchpad_cell.retention_model()
        assert model.subthreshold_leak() > model.junction_leak()
        assert model.subthreshold_leak() > model.dielectric_leak()

    def test_trench_dominated_by_junction(self, trench_cell):
        """The negative word-line low level kills the subthreshold term."""
        model = trench_cell.retention_model()
        assert model.junction_leak() > 10 * model.subthreshold_leak()

    def test_vth_shift_multiplies_exponentially(self, scratchpad_cell):
        model = scratchpad_cell.retention_model()
        swing = model.access_device.params.subthreshold_swing
        base = model.subthreshold_leak(0.0)
        shifted = model.subthreshold_leak(-swing)
        assert shifted / base == pytest.approx(10.0, rel=0.05)


class TestNominalRetention:
    def test_scratchpad_hundreds_of_microseconds(self, scratchpad_cell):
        t = scratchpad_cell.retention_model().nominal_retention()
        assert 50 * us < t < 2000 * us

    def test_trench_much_longer(self, scratchpad_cell, trench_cell):
        sp = scratchpad_cell.retention_model().nominal_retention()
        tr = trench_cell.retention_model().nominal_retention()
        assert tr > 20 * sp

    def test_retention_proportional_to_margin(self, trench_cell):
        base = trench_cell.retention_model()
        doubled = dataclasses.replace(base,
                                      readable_margin=2 * base.readable_margin)
        assert doubled.nominal_retention() == pytest.approx(
            2 * base.nominal_retention())


class TestStatistics:
    def test_worst_case_below_typical(self, trench_cell):
        stats = trench_cell.retention_model().statistics(count=600)
        assert 0 < stats.worst_case < stats.typical

    def test_more_sigma_is_more_conservative(self, trench_cell):
        model = trench_cell.retention_model()
        s3 = model.statistics(count=600, n_sigma=3.0)
        s6 = model.statistics(count=600, n_sigma=6.0)
        assert s6.worst_case < s3.worst_case

    def test_reproducible(self, trench_cell):
        model = trench_cell.retention_model()
        a = model.statistics(count=400, seed=11)
        b = model.statistics(count=400, seed=11)
        assert a.worst_case == b.worst_case

    def test_paper_band_scratchpad(self, scratchpad_cell):
        """The paper's conservative scratch-pad worst case is in the
        (single-digit to tens of) microseconds band."""
        stats = scratchpad_cell.retention_model().statistics(count=1000)
        assert 1 * us < stats.worst_case < 100 * us

    def test_paper_band_trench(self, trench_cell):
        """DRAM-technology worst case lands near a millisecond."""
        stats = trench_cell.retention_model().statistics(count=1000)
        assert 200 * us < stats.worst_case < 5000 * us

    def test_sample_positive(self, trench_cell, rng):
        model = trench_cell.retention_model()
        assert model.sample_retention(rng) > 0


class TestValidation:
    def test_rejects_bad_margin(self, trench_cell):
        model = trench_cell.retention_model()
        with pytest.raises(ConfigurationError):
            dataclasses.replace(model, readable_margin=0.0)

    def test_stats_ordering_enforced(self):
        from repro.variability import RetentionStatistics
        with pytest.raises(ConfigurationError):
            RetentionStatistics(typical=1e-6, mean=1e-6, worst_case=1e-3,
                                n_sigma=6.0, sample_count=100)
